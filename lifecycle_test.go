package frappe

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"frappe/internal/modelreg"
	"frappe/internal/svm"
)

// End-to-end model lifecycle: train → publish → validate → hot-swap →
// rollback. The acceptance story: concurrent /check traffic across a
// v1→v2 publish completes with zero dropped or failed requests, a
// metrics-regressing candidate is refused promotion, and rollback to a
// prior version restores its exact verdicts.

// trainLifecycle fits a Lite classifier on a deterministic slice of the
// shared world's labeled sample.
func trainLifecycle(t *testing.T, seed int64, drop int) *Classifier {
	t.Helper()
	_, d := sharedWorld(t)
	records, labels := LabeledSample(d)
	if drop > 0 && drop < len(records) {
		records, labels = records[:len(records)-drop], labels[:len(labels)-drop]
	}
	clf, err := Train(records, labels, Options{Features: LiteFeatures(), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return clf
}

// TestRegistryRoundTripVerdictParity: a classifier loaded back out of the
// registry yields byte-identical verdicts to the in-memory one, for both
// Lite and Full feature modes — the Classifier-layer extension of the svm
// gob round-trip test, through the content-addressed store.
func TestRegistryRoundTripVerdictParity(t *testing.T) {
	_, d := sharedWorld(t)
	records, labels := LabeledSample(d)
	for _, tc := range []struct {
		mode     string
		features []Feature
	}{
		{"lite", LiteFeatures()},
		{"full", FullFeatures()},
	} {
		t.Run(tc.mode, func(t *testing.T) {
			reg, err := OpenModelRegistry(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			clf, err := Train(records, labels, Options{Features: tc.features, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			m, err := PublishClassifier(reg, clf, ModelManifest{
				TrainingFingerprint: TrainingFingerprint(records, labels),
				TrainedRecords:      len(records),
			})
			if err != nil {
				t.Fatal(err)
			}
			if m.FeatureMode != tc.mode {
				t.Errorf("manifest feature mode = %q, want %q", m.FeatureMode, tc.mode)
			}
			loaded, lm, err := LoadClassifier(reg, 0)
			if err != nil {
				t.Fatal(err)
			}
			if lm.ModelID() != m.ModelID() {
				t.Errorf("loaded manifest %s, published %s", lm.ModelID(), m.ModelID())
			}
			for _, r := range records {
				v1, err1 := clf.Classify(r)
				v2, err2 := loaded.Classify(r)
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				if v1.Malicious != v2.Malicious || v1.Score != v2.Score {
					t.Fatalf("%s: registry round trip diverged on %s: %+v vs %+v",
						tc.mode, r.ID, v1, v2)
				}
			}
		})
	}
}

// lifecycleServer wires a registry-backed watchdog + reloader over the
// shared world's services and returns the pieces the tests drive.
func lifecycleServer(t *testing.T, reg *ModelRegistry) (*httptest.Server, *Watchdog) {
	t.Helper()
	w, d := sharedWorld(t)
	st, err := StartServices(w)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	wd, err := NewWatchdogFromRegistry(reg, WatchdogConfig{
		GraphURL:   st.GraphURL,
		WOTURL:     st.WOTURL,
		VerdictTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	records, _ := LabeledSample(d)
	probe := records
	if len(probe) > 8 {
		probe = probe[:8]
	}
	rel := NewReloader(wd, reg, ReloadConfig{Probe: probe})
	srv := httptest.NewServer(WatchdogHandlerWith(wd, 15*time.Second, rel))
	t.Cleanup(srv.Close)
	return srv, wd
}

func getAssessment(t *testing.T, url string) (int, Assessment) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var a Assessment
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode, a
}

func postReload(t *testing.T, srv *httptest.Server) ReloadStatus {
	t.Helper()
	resp, err := http.Post(srv.URL+"/model/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ReloadStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestHotSwapUnderLoad: hammer /check from many goroutines while v2 is
// published and hot-swapped in. Every single request must complete as a
// verdict (200, or 404 for a deleted app) — zero drops, zero failures —
// and requests issued after the swap must report v2's model version.
func TestHotSwapUnderLoad(t *testing.T) {
	reg, err := OpenModelRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	v1 := trainLifecycle(t, 2, 4)
	m1, err := PublishClassifier(reg, v1, ModelManifest{Notes: "v1"})
	if err != nil {
		t.Fatal(err)
	}
	srv, wd := lifecycleServer(t, reg)
	ids := liveApps(t, 3)
	if len(ids) == 0 {
		t.Skip("world has no live apps")
	}
	if got := wd.ServingManifest().ModelID(); got != m1.ModelID() {
		t.Fatalf("serving %s before swap, want %s", got, m1.ModelID())
	}

	var (
		stop     atomic.Bool
		requests atomic.Int64
		failures atomic.Int64
	)
	const workers = 8
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				id := ids[(g+i)%len(ids)]
				resp, err := http.Get(srv.URL + "/check?app=" + id)
				if err != nil {
					failures.Add(1)
					t.Errorf("worker %d: request error: %v", g, err)
					continue
				}
				var a Assessment
				decErr := json.NewDecoder(resp.Body).Decode(&a)
				resp.Body.Close()
				requests.Add(1)
				switch {
				case decErr != nil:
					failures.Add(1)
					t.Errorf("worker %d: undecodable response: %v", g, decErr)
				case resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound:
					failures.Add(1)
					t.Errorf("worker %d: status %d (assessment %+v)", g, resp.StatusCode, a)
				case a.ModelVersion == "":
					failures.Add(1)
					t.Errorf("worker %d: verdict missing model version: %+v", g, a)
				}
			}
		}(g)
	}

	// Let the load build, then publish v2 and swap it in mid-flight.
	time.Sleep(50 * time.Millisecond)
	v2 := trainLifecycle(t, 3, 0)
	m2, err := PublishClassifier(reg, v2, ModelManifest{Notes: "v2"})
	if err != nil {
		t.Fatal(err)
	}
	if m2.ModelID() == m1.ModelID() {
		t.Fatal("v2 content-identical to v1; the swap would be a no-op")
	}
	st := postReload(t, srv)
	if st.Outcome != ReloadSwapped {
		t.Fatalf("reload outcome = %q (%s), want swapped", st.Outcome, st.Error)
	}
	if st.Serving.ModelID() != m2.ModelID() {
		t.Fatalf("reload serving %s, want %s", st.Serving.ModelID(), m2.ModelID())
	}
	// Keep hammering across the swap boundary, then stop.
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if n := requests.Load(); n < workers {
		t.Fatalf("only %d requests completed; load generator broken", n)
	}
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d of %d requests failed across the hot swap", n, requests.Load())
	}

	// Post-swap requests answer with v2's version, for every app.
	for _, id := range ids {
		status, a := getAssessment(t, srv.URL+"/check?app="+id)
		if status != http.StatusOK && status != http.StatusNotFound {
			t.Fatalf("post-swap check status = %d", status)
		}
		if a.ModelVersion != m2.ModelID() {
			t.Errorf("post-swap verdict for %s stamped %q, want %q", id, a.ModelVersion, m2.ModelID())
		}
	}
	// /model reports the new manifest.
	resp, err := http.Get(srv.URL + "/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var model struct {
		ModelID  string        `json:"model_id"`
		Manifest ModelManifest `json:"manifest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&model); err != nil {
		t.Fatal(err)
	}
	if model.ModelID != m2.ModelID() || model.Manifest.Notes != "v2" {
		t.Errorf("/model = %+v, want %s", model, m2.ModelID())
	}
	t.Logf("hot swap absorbed %d concurrent requests, 0 failures (%s -> %s)",
		requests.Load(), m1.ModelID(), m2.ModelID())
}

// TestPromotionGateRefusesRegressingCandidate: a retraining round whose
// candidate shadow-evaluates worse than the incumbent on the shared
// holdout publishes nothing; the registry keeps serving the incumbent.
func TestPromotionGateRefusesRegressingCandidate(t *testing.T) {
	_, d := sharedWorld(t)
	records, labels := LabeledSample(d)
	reg, err := OpenModelRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	snapshot := func(context.Context) ([]AppRecord, []bool, error) {
		return records, labels, nil
	}
	healthy, err := NewRetrainer(reg, RetrainConfig{
		Snapshot: snapshot,
		Options:  Options{Features: LiteFeatures(), Seed: 2},
		CVFolds:  -1, // CV metrics are irrelevant here; keep the test fast
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := healthy.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != RetrainPublished {
		t.Fatalf("first round outcome = %q (%s), want published", res.Outcome, res.Reason)
	}
	incumbent := res.Manifest

	// An unchanged snapshot is recognised and skipped outright.
	res, err = healthy.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != RetrainUnchanged {
		t.Fatalf("unchanged-corpus round outcome = %q, want unchanged", res.Outcome)
	}

	// A crippled candidate: same pipeline, but an SVM that cannot fit
	// (vanishing C ⇒ near-constant decision function). Its holdout
	// accuracy collapses versus the incumbent, so the gate must refuse it.
	// Dropping one record changes the fingerprint so training actually runs.
	weak := svm.DefaultParams(len(LiteFeatures()))
	weak.C = 1e-9
	crippled, err := NewRetrainer(reg, RetrainConfig{
		Snapshot: func(context.Context) ([]AppRecord, []bool, error) {
			return records[:len(records)-1], labels[:len(labels)-1], nil
		},
		Options: Options{Features: LiteFeatures(), Seed: 2, SVM: &weak},
		CVFolds: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err = crippled.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != RetrainRefused {
		t.Fatalf("crippled-candidate outcome = %q (reason %q), want refused", res.Outcome, res.Reason)
	}
	if res.Incumbent == nil {
		t.Fatal("refusal carries no incumbent metrics")
	}
	if res.Candidate.Accuracy >= res.Incumbent.Accuracy {
		t.Errorf("candidate accuracy %.4f not below incumbent %.4f; refusal reason suspect",
			res.Candidate.Accuracy, res.Incumbent.Accuracy)
	}
	// The registry still serves the incumbent.
	m, err := reg.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if m.ModelID() != incumbent.ModelID() {
		t.Errorf("registry serves %s after refusal, want incumbent %s", m.ModelID(), incumbent.ModelID())
	}
}

// TestRollbackRestoresExactVerdicts: publish v1, record its served
// verdicts, swap to v2, roll back to v1 — the same requests must return
// v1's exact scores and model version again.
func TestRollbackRestoresExactVerdicts(t *testing.T) {
	reg, err := OpenModelRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	v1 := trainLifecycle(t, 2, 4)
	m1, err := PublishClassifier(reg, v1, ModelManifest{Notes: "v1"})
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := lifecycleServer(t, reg)
	ids := liveApps(t, 3)
	if len(ids) == 0 {
		t.Skip("world has no live apps")
	}

	baseline := make(map[string]Assessment, len(ids))
	for _, id := range ids {
		_, a := getAssessment(t, srv.URL+"/check?app="+id)
		if a.ModelVersion != m1.ModelID() {
			t.Fatalf("baseline verdict stamped %q, want %q", a.ModelVersion, m1.ModelID())
		}
		baseline[id] = a
	}

	v2 := trainLifecycle(t, 3, 0)
	m2, err := PublishClassifier(reg, v2, ModelManifest{Notes: "v2"})
	if err != nil {
		t.Fatal(err)
	}
	if st := postReload(t, srv); st.Outcome != ReloadSwapped {
		t.Fatalf("swap to v2: %q (%s)", st.Outcome, st.Error)
	}
	for _, id := range ids {
		_, a := getAssessment(t, srv.URL+"/check?app="+id)
		if a.ModelVersion != m2.ModelID() {
			t.Fatalf("v2 verdict stamped %q, want %q", a.ModelVersion, m2.ModelID())
		}
	}

	// Roll back: re-point CURRENT at v1 and reload. Content addressing
	// guarantees the identical bytes, so the verdicts must be exact.
	if err := reg.SetCurrent(m1.Version); err != nil {
		t.Fatal(err)
	}
	st := postReload(t, srv)
	if st.Outcome != ReloadSwapped {
		t.Fatalf("rollback reload: %q (%s)", st.Outcome, st.Error)
	}
	if st.Serving.ModelID() != m1.ModelID() {
		t.Fatalf("rollback serving %s, want %s", st.Serving.ModelID(), m1.ModelID())
	}
	for _, id := range ids {
		_, a := getAssessment(t, srv.URL+"/check?app="+id)
		want := baseline[id]
		if a.ModelVersion != m1.ModelID() {
			t.Errorf("rolled-back verdict for %s stamped %q, want %q", id, a.ModelVersion, m1.ModelID())
		}
		if a.Malicious != want.Malicious || a.Score != want.Score || a.Deleted != want.Deleted {
			t.Errorf("rollback verdict for %s diverged: %+v, want %+v", id, a, want)
		}
	}
}

// TestReloaderRejectsCorruptAndInvalidCandidates: checksum mismatches and
// probe failures keep the serving model in place.
func TestReloaderRejectsCorruptAndInvalidCandidates(t *testing.T) {
	dir := t.TempDir()
	reg, err := OpenModelRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	v1 := trainLifecycle(t, 2, 4)
	m1, err := PublishClassifier(reg, v1, ModelManifest{Notes: "v1"})
	if err != nil {
		t.Fatal(err)
	}
	srv, wd := lifecycleServer(t, reg)

	// A "model" that is valid gob for nothing: published bytes that do not
	// decode into a classifier.
	if _, err := reg.Publish(strings.NewReader(`{"not":"a model"}`), modelreg.Manifest{Notes: "garbage"}); err != nil {
		t.Fatal(err)
	}
	st := postReload(t, srv)
	if st.Outcome != ReloadUndecodable {
		t.Fatalf("garbage candidate outcome = %q (%s), want undecodable", st.Outcome, st.Error)
	}
	if got := wd.ServingManifest().ModelID(); got != m1.ModelID() {
		t.Fatalf("serving %s after rejected reload, want %s", got, m1.ModelID())
	}
	// The HTTP layer surfaces the refusal as a gateway error.
	resp, err := http.Post(srv.URL+"/model/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("refused reload status = %d, want 502", resp.StatusCode)
	}
}
