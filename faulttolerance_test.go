package frappe

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"frappe/internal/telemetry"
)

// End-to-end fault tolerance: the watchdog pipeline against a stack with
// deterministic fault injection. These tests are the PR's acceptance
// story — transient faults are absorbed by retries and converge to the
// same verdicts a clean stack gives; sustained outages trip the circuit
// breaker and surface as 503s instead of hammering a dead upstream.

// trainedClassifier fits the shared world's Lite classifier once per call.
func trainedClassifier(t *testing.T) *Classifier {
	t.Helper()
	_, d := sharedWorld(t)
	records, labels := LabeledSample(d)
	clf, err := Train(records, labels, Options{Features: LiteFeatures(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return clf
}

// liveApps returns up to n live (not deleted) app IDs from each class.
func liveApps(t *testing.T, n int) []string {
	t.Helper()
	w, _ := sharedWorld(t)
	var ids []string
	pick := func(pool []string) {
		taken := 0
		for _, id := range pool {
			if taken == n {
				return
			}
			if _, err := w.Platform.Lookup(id); err == nil {
				ids = append(ids, id)
				taken++
			}
		}
	}
	pick(w.BenignIDs)
	pick(w.MaliciousIDs)
	return ids
}

// TestWatchdogConvergesUnderTransientFaults: with a quarter of requests
// 502ing, a handful hanging, and latency on every call, a watchdog with a
// retry budget reaches the same verdicts as one on a clean stack.
func TestWatchdogConvergesUnderTransientFaults(t *testing.T) {
	w, _ := sharedWorld(t)
	clf := trainedClassifier(t)
	ids := liveApps(t, 3)
	if len(ids) == 0 {
		t.Skip("world has no live apps")
	}

	clean, err := StartServices(w)
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	faulty, err := StartServicesWithFaults(w, &FaultSpec{
		Seed: 11,
		Default: ServiceFaults{
			ErrorRate: 0.25,
			HangRate:  0.03,
			Latency:   2 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer faulty.Close()

	cleanWD, err := NewWatchdog(clf, clean.GraphURL, clean.WOTURL)
	if err != nil {
		t.Fatal(err)
	}
	// Generous retry budget, breaker off: every transient fault must be
	// absorbed, none escalated.
	faultyWD, err := NewWatchdogWith(clf, WatchdogConfig{
		GraphURL:         faulty.GraphURL,
		WOTURL:           faulty.WOTURL,
		Timeout:          250 * time.Millisecond, // reclaims hung requests fast
		Retries:          7,
		BreakerThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}

	injectedBefore := injectedFaults()
	ctx := context.Background()
	for _, id := range ids {
		want := cleanWD.Assess(ctx, id)
		got := faultyWD.Assess(ctx, id)
		if want.Error != "" {
			t.Fatalf("clean assessment of %s failed: %s", id, want.Error)
		}
		if got.Error != "" {
			t.Errorf("faulted assessment of %s failed: %s (cause %s)", id, got.Error, got.Cause)
			continue
		}
		if got.Malicious != want.Malicious || got.Deleted != want.Deleted {
			t.Errorf("verdict for %s diverged under faults: clean=%+v faulted=%+v", id, want, got)
		}
	}
	if injectedFaults() == injectedBefore {
		t.Error("fault middleware injected nothing; the faulted run was not actually faulted")
	}
}

// injectedFaults sums the stack's injected-fault counters.
func injectedFaults() uint64 {
	reg := telemetry.Default()
	var total uint64
	for _, svc := range []string{"graph", "bitly", "wot", "socialbakers", "redirector"} {
		for _, kind := range []string{"error", "hang"} {
			total += reg.CounterValue("frappe_faults_injected_total", svc, kind)
		}
	}
	return total
}

// TestWatchdogSustainedOutageOpensBreaker: when the Graph API fails every
// request, the first /check reports an upstream failure (502) and the
// breaker opens; the next /check is rejected locally as 503 with a
// Retry-After, without touching the dead upstream.
func TestWatchdogSustainedOutageOpensBreaker(t *testing.T) {
	w, _ := sharedWorld(t)
	clf := trainedClassifier(t)
	ids := liveApps(t, 1)
	if len(ids) == 0 {
		t.Skip("world has no live apps")
	}

	faulty, err := StartServicesWithFaults(w, &FaultSpec{
		Seed:       3,
		PerService: map[string]ServiceFaults{"graph": {ErrorRate: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer faulty.Close()

	wd, err := NewWatchdogWith(clf, WatchdogConfig{
		GraphURL:         faulty.GraphURL,
		WOTURL:           faulty.WOTURL,
		Retries:          -1, // one attempt per fetch: breaker state is exact
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
		VerdictTTL:       time.Minute, // failures must NOT be cached
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(WatchdogHandler(wd, 10*time.Second))
	defer srv.Close()

	check := func() (*http.Response, Assessment) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/check?app=" + ids[0])
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var a Assessment
		if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
			t.Fatal(err)
		}
		return resp, a
	}

	// First check burns through the breaker threshold: summary fails, feed
	// fails, circuit opens. The response is an upstream failure.
	resp, a := check()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("first check status = %d, want %d (assessment %+v)", resp.StatusCode, http.StatusBadGateway, a)
	}
	if a.Cause != CauseUpstream {
		t.Errorf("first check cause = %q, want %q", a.Cause, CauseUpstream)
	}

	// Second check is rejected by the open breaker before any upstream call.
	resp, a = check()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second check status = %d, want %d (assessment %+v)", resp.StatusCode, http.StatusServiceUnavailable, a)
	}
	if a.Cause != CauseBreakerOpen {
		t.Errorf("second check cause = %q, want %q", a.Cause, CauseBreakerOpen)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("breaker-open response carries no Retry-After")
	}
	if a.Cached {
		t.Error("breaker rejection claims to be cached; failures must not be cached")
	}
}

// TestCheckVerdictCacheAbsorbsRepeatedTraffic: a second /check for the
// same app inside the TTL is served from the verdict cache — no second
// crawl, and the response says so.
func TestCheckVerdictCacheAbsorbsRepeatedTraffic(t *testing.T) {
	w, _ := sharedWorld(t)
	clf := trainedClassifier(t)
	ids := liveApps(t, 1)
	if len(ids) == 0 {
		t.Skip("world has no live apps")
	}
	st, err := StartServices(w)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	wd, err := NewWatchdogWith(clf, WatchdogConfig{
		GraphURL:   st.GraphURL,
		WOTURL:     st.WOTURL,
		VerdictTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(WatchdogHandler(wd, 10*time.Second))
	defer srv.Close()

	reg := telemetry.Default()
	hitsBefore := reg.CounterValue("frappe_verdict_cache_total", "hit")

	var first, second Assessment
	for i, dst := range []*Assessment{&first, &second} {
		resp, err := http.Get(srv.URL + "/check?app=" + ids[0])
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("check %d status = %d", i, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if first.Cached {
		t.Error("first check claims to be cached")
	}
	if !second.Cached {
		t.Error("second check not served from the verdict cache")
	}
	if second.Malicious != first.Malicious || second.Score != first.Score {
		t.Errorf("cached verdict diverged: first=%+v second=%+v", first, second)
	}
	if got := reg.CounterValue("frappe_verdict_cache_total", "hit"); got != hitsBefore+1 {
		t.Errorf("verdict cache hits = %d, want %d", got, hitsBefore+1)
	}
}
