package frappe

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"frappe/internal/telemetry"
)

// trainedWatchdog returns a watchdog over the shared world's live services.
func trainedWatchdog(t *testing.T) (*Watchdog, func()) {
	t.Helper()
	w, d := sharedWorld(t)
	records, labels := LabeledSample(d)
	clf, err := Train(records, labels, Options{Features: LiteFeatures(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := StartServices(w)
	if err != nil {
		t.Fatal(err)
	}
	wd, err := NewWatchdog(clf, st.GraphURL, st.WOTURL)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	return wd, st.Close
}

// deadEndWatchdog returns a watchdog whose Graph endpoint refuses every
// connection — the crawl-failure (not deleted-app) path.
func deadEndWatchdog(t *testing.T) *Watchdog {
	t.Helper()
	_, d := sharedWorld(t)
	records, labels := LabeledSample(d)
	clf, err := Train(records, labels, Options{Features: LiteFeatures(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Reserve a port and close it so connections are refused immediately.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()
	wd, err := NewWatchdog(clf, dead, dead)
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

// TestCheckCrawlFailureIsNot200 is the satellite bugfix: a /check whose
// upstream crawl failed must not return 200 with an error buried in the
// body — and must not masquerade as a deleted-app verdict either.
func TestCheckCrawlFailureIsNot200(t *testing.T) {
	wd := deadEndWatchdog(t)
	srv := httptest.NewServer(WatchdogHandler(wd, 10*time.Second))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/check?app=1000001")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d, want %d", resp.StatusCode, http.StatusBadGateway)
	}
	var a Assessment
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		t.Fatal(err)
	}
	if a.Error == "" {
		t.Error("assessment carries no error")
	}
	if a.Deleted {
		t.Errorf("crawl failure reported as deleted: %+v", a)
	}
	if a.Cause != CauseUpstream {
		t.Errorf("cause = %q, want %q", a.Cause, CauseUpstream)
	}
}

// TestCheckDeletedAppIs404 pins the counterpart: a deleted app is a
// verdict (the paper treats deletion as confirmation), served as 404 —
// the resource is gone — with the malicious-by-deletion assessment in
// the body, distinct from the 502 a transient crawl failure gets.
func TestCheckDeletedAppIs404(t *testing.T) {
	wd, closeStack := trainedWatchdog(t)
	defer closeStack()
	w, _ := sharedWorld(t)
	var deleted string
	for _, id := range w.MaliciousIDs {
		if _, err := w.Platform.Lookup(id); err != nil {
			deleted = id
			break
		}
	}
	if deleted == "" {
		t.Skip("world has no deleted app")
	}
	srv := httptest.NewServer(WatchdogHandler(wd, 10*time.Second))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/check?app=" + deleted)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("deleted app status = %d, want %d", resp.StatusCode, http.StatusNotFound)
	}
	var a Assessment
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		t.Fatal(err)
	}
	if !a.Deleted || !a.Malicious {
		t.Errorf("deleted assessment = %+v", a)
	}
	if a.Cause != CauseDeleted {
		t.Errorf("cause = %q, want %q", a.Cause, CauseDeleted)
	}
}

// TestRankFansOut exercises the bounded worker pool: results must be
// complete, sorted, and identical to the sequential semantics, and the
// fan-out width must land in the telemetry gauge.
func TestRankFansOut(t *testing.T) {
	wd, closeStack := trainedWatchdog(t)
	defer closeStack()
	w, _ := sharedWorld(t)

	var ids []string
	for _, id := range append(append([]string(nil), w.MaliciousIDs...), w.BenignIDs...) {
		ids = append(ids, id)
		if len(ids) == 12 {
			break
		}
	}
	wd.RankWorkers = 4
	out := wd.Rank(context.Background(), ids)
	if len(out) != len(ids) {
		t.Fatalf("Rank returned %d rows for %d ids", len(out), len(ids))
	}
	seen := make(map[string]bool, len(out))
	for _, a := range out {
		seen[a.AppID] = true
	}
	for _, id := range ids {
		if !seen[id] {
			t.Errorf("app %s missing from ranking", id)
		}
	}
	for i := 1; i < len(out); i++ {
		if out[i].Deleted && !out[i-1].Deleted {
			t.Errorf("deleted app ranked below live app at %d", i)
		}
		if out[i-1].Deleted == out[i].Deleted && out[i-1].Score < out[i].Score {
			t.Errorf("scores out of order at %d: %.3f < %.3f", i, out[i-1].Score, out[i].Score)
		}
	}
	if got := telemetry.Default().GaugeValue("frappe_rank_fanout_width"); got != 4 {
		t.Errorf("fan-out gauge = %v, want 4", got)
	}
}

// TestRankCancelledContext: once the context is gone, remaining rows carry
// the context error instead of hanging.
func TestRankCancelledContext(t *testing.T) {
	wd, closeStack := trainedWatchdog(t)
	defer closeStack()
	w, _ := sharedWorld(t)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := wd.Rank(ctx, w.BenignIDs[:3])
	if len(out) != 3 {
		t.Fatalf("Rank returned %d rows", len(out))
	}
	for _, a := range out {
		if a.Error == "" {
			t.Errorf("cancelled assessment has no error: %+v", a)
		}
	}
}
