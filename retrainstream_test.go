package frappe

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"frappe/internal/fbplatform"
	"frappe/internal/mypagekeeper"
	"frappe/internal/wal"
)

// walWithPosts appends n posts (and one blacklist add, for kind coverage)
// to a fresh WAL-backed ingestion session over m.
func walWithPosts(t *testing.T, l *wal.Log, m *mypagekeeper.Monitor, from, n int) {
	t.Helper()
	ing := m.StartIngestWith(mypagekeeper.IngestConfig{Workers: 2, WAL: l})
	for i := from; i < from+n; i++ {
		ing.Observe(fbplatform.Post{
			AppID:  fmt.Sprintf("2%014d", i%7),
			UserID: i % 50,
			Link:   fmt.Sprintf("http://campaign.example/p%d", i),
		})
	}
	ing.AddBlacklistedURL("http://campaign.example/p0")
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
}

func newReplica() *mypagekeeper.Monitor {
	m := mypagekeeper.New(mypagekeeper.DefaultClassifierConfig())
	m.SubscribeRange(0, 100)
	return m
}

// TestRetrainStreamResumesFromOffset drives the retrainer from an
// ingestion WAL: rounds with no new events are skipped without
// snapshotting, new events advance the committed consumer offset, and a
// restarted retrainer (fresh replica, same log and registry) resumes from
// the recorded offset instead of re-deciding on replayed data.
func TestRetrainStreamResumesFromOffset(t *testing.T) {
	_, d := sharedWorld(t)
	records, labels := LabeledSample(d)
	walDir := t.TempDir()

	// Producer side: a WAL-backed ingestion session writes the log the
	// retrainer will tail.
	producer := newReplica()
	l, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	walWithPosts(t, l, producer, 0, 40)
	firstEnd := l.End()

	reg, err := OpenModelRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	replica := newReplica()
	stream := &RetrainStream{Log: l, Monitor: replica}
	var snapshots int
	// The snapshot derives from the replica: its size shifts with the
	// replayed post count, so new WAL events change the training
	// fingerprint and an un-caught-up replica would be visible here.
	snapshot := func(context.Context) ([]AppRecord, []bool, error) {
		snapshots++
		k := len(records) - replica.Stats().PostsObserved%5
		return records[:k], labels[:k], nil
	}
	rt, err := NewRetrainer(reg, RetrainConfig{
		Snapshot:  snapshot,
		Options:   Options{Features: LiteFeatures(), Seed: 2},
		CVFolds:   -1,
		Tolerance: 1, // promotion gating is not under test here
		Stream:    stream,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Round 1: the replica is caught up to the log end before training.
	res, err := rt.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != RetrainPublished {
		t.Fatalf("round 1 outcome = %q (%s), want published", res.Outcome, res.Reason)
	}
	if got := replica.Stats().PostsObserved; got != 40 {
		t.Fatalf("replica saw %d posts after catch-up, want 40", got)
	}
	if off, _ := l.ConsumerOffset("retrainer"); off != firstEnd {
		t.Fatalf("committed offset = %d, want %d", off, firstEnd)
	}
	if snapshots != 1 {
		t.Fatalf("snapshot called %d times, want 1", snapshots)
	}

	// Round 2: nothing new in the log — skipped before the snapshot runs.
	res, err = rt.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != RetrainUnchanged || !strings.Contains(res.Reason, "committed offset") {
		t.Fatalf("idle round outcome = %q (%s), want offset-based unchanged", res.Outcome, res.Reason)
	}
	if snapshots != 1 {
		t.Fatalf("idle round still snapshotted (calls = %d)", snapshots)
	}

	// New events arrive; round 3 catches up and trains again.
	walWithPosts(t, l, producer, 40, 3)
	res, err = rt.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != RetrainPublished {
		t.Fatalf("round 3 outcome = %q (%s), want published", res.Outcome, res.Reason)
	}
	if got := replica.Stats().PostsObserved; got != 43 {
		t.Fatalf("replica saw %d posts after second catch-up, want 43", got)
	}
	if off, _ := l.ConsumerOffset("retrainer"); off != l.End() {
		t.Fatalf("committed offset = %d, want log end %d", off, l.End())
	}

	// "Restart": a new retrainer with a fresh replica over the same log
	// and registry replays from zero, sees the committed offset already at
	// the end, and skips without snapshotting — resume from the recorded
	// offset, no reprocessing.
	replica2 := newReplica()
	var snapshots2 int
	rt2, err := NewRetrainer(reg, RetrainConfig{
		Snapshot: func(context.Context) ([]AppRecord, []bool, error) {
			snapshots2++
			return records, labels, nil
		},
		Options:   Options{Features: LiteFeatures(), Seed: 2},
		CVFolds:   -1,
		Tolerance: 1,
		Stream:    &RetrainStream{Log: l, Monitor: replica2},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err = rt2.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != RetrainUnchanged || !strings.Contains(res.Reason, "committed offset") {
		t.Fatalf("restarted round outcome = %q (%s), want offset-based unchanged", res.Outcome, res.Reason)
	}
	if snapshots2 != 0 {
		t.Fatalf("restarted retrainer snapshotted %d times, want 0", snapshots2)
	}
	if got := replica2.Stats().PostsObserved; got != 43 {
		t.Fatalf("restarted replica saw %d posts, want 43", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRetrainStreamValidation: a stream missing its log or replica is a
// configuration error, not a nil-pointer panic three rounds later.
func TestRetrainStreamValidation(t *testing.T) {
	reg, err := OpenModelRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snapshot := func(context.Context) ([]AppRecord, []bool, error) { return nil, nil, nil }
	if _, err := NewRetrainer(reg, RetrainConfig{Snapshot: snapshot, Stream: &RetrainStream{}}); err == nil {
		t.Fatal("want error for stream without log and monitor")
	}
	if _, err := NewRetrainer(reg, RetrainConfig{Snapshot: snapshot,
		Stream: &RetrainStream{Log: &wal.Log{}}}); err == nil {
		t.Fatal("want error for stream without monitor")
	}
}
