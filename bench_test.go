// Repository-level benchmarks: one per table and figure of the paper's
// evaluation, each driving the corresponding experiment in
// internal/experiments against a shared synthetic world. Run them with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured comparison. The world is
// generated once per process at the experiment scale (a bench-scale world
// would drown the numbers in generation time).
package frappe_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"frappe/internal/experiments"
)

const benchScale = 0.15

var (
	benchOnce   sync.Once
	benchRunner *experiments.Runner
	benchErr    error
)

func runner(b *testing.B) *experiments.Runner {
	b.Helper()
	benchOnce.Do(func() {
		benchRunner, benchErr = experiments.New(context.Background(), benchScale, 0)
	})
	if benchErr != nil {
		b.Fatalf("world generation: %v", benchErr)
	}
	return benchRunner
}

func BenchmarkWorldGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.New(context.Background(), 0.01, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1DatasetSummary(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := r.Table1()
		if res.DTotal == 0 {
			b.Fatal("empty D-Total")
		}
	}
}

func BenchmarkTable2TopMaliciousApps(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := r.Table2(); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable3TopHostingDomains(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := r.Table3(); len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable5FRAppELiteCV(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := r.Table5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderTable5(rows))
		}
	}
}

func BenchmarkTable6SingleFeature(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := r.Table6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderTable6(rows))
		}
	}
}

func BenchmarkFRAppEFullCV(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.FRAppE()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkTable8Validation(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Table8(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkTable9Piggybacking(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := r.Table9(); len(rows) == 0 {
			b.Fatal("no victims")
		}
	}
}

func BenchmarkFig1AppNetSnapshot(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := r.Fig1()
		if res.Summary.Apps == 0 {
			b.Fatal("empty graph")
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFig3BitlyClicks(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := r.Fig3(); res.N == 0 {
			b.Fatal("no samples")
		}
	}
}

func BenchmarkFig4MAU(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := r.Fig4(); res.Median.N == 0 {
			b.Fatal("no samples")
		}
	}
}

func BenchmarkFig5SummaryFields(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := r.Fig5(); len(rows) != 3 {
			b.Fatal("bad rows")
		}
	}
}

func BenchmarkFig6TopPermissions(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := r.Fig6(); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig7PermissionCount(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := r.Fig7(); res.MalOne == 0 {
			b.Fatal("no data")
		}
	}
}

func BenchmarkFig8WOTScores(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := r.Fig8(); res.Malicious.N == 0 {
			b.Fatal("no data")
		}
	}
}

func BenchmarkFig9ProfilePosts(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := r.Fig9(); res.Malicious.N == 0 {
			b.Fatal("no data")
		}
	}
}

func BenchmarkFig10NameClustering(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := r.Fig10(); len(rows) != 5 {
			b.Fatal("bad rows")
		}
	}
}

func BenchmarkFig11ClusterSizes(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := r.Fig11(); res.MalClusters == 0 {
			b.Fatal("no clusters")
		}
	}
}

func BenchmarkFig12ExternalLinkRatio(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := r.Fig12(); res.Malicious.N == 0 {
			b.Fatal("no data")
		}
	}
}

func BenchmarkFig13PromoterRoles(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := r.Fig1() // Fig. 13's role split is part of the graph summary
		if res.Summary.Promoters == 0 {
			b.Fatal("no promoters")
		}
	}
}

func BenchmarkFig14ClusteringCoefficient(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := r.Fig14(); res.CDF.N == 0 {
			b.Fatal("no data")
		}
	}
}

func BenchmarkFig16PiggybackRatio(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := r.Fig16(); res.CDF.N == 0 {
			b.Fatal("no data")
		}
	}
}

func BenchmarkIndirection(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := r.Indirection(); res.Report.Sites == 0 {
			b.Fatal("no sites")
		}
	}
}

func BenchmarkPrevalence(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := r.Prevalence()
		if res.FlaggedPostsTotal == 0 {
			b.Fatal("no flagged posts")
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkRobustFeatures(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Robust()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkAblationKernels(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := r.AblationKernels()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderKernels(rows))
		}
	}
}

func BenchmarkAblationLabelNoise(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := r.AblationLabelNoise()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderNoise(rows))
		}
	}
}

func BenchmarkAblationGridSearch(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.AblationGridSearch()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkAblationLearnedMPK(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.AblationLearnedMPK()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkCountermeasures(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := r.Countermeasures()
		if res.Hardened.PromotionEdges != 0 {
			b.Fatal("promotion ban failed")
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// Example output sanity for the shared world, printed once under -v.
func BenchmarkWorldStats(b *testing.B) {
	r := runner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fmt.Sprintf("%d apps / %d posts", r.World.Platform.NumApps(), r.World.TotalStreamPosts)
	}
}
