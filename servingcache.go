package frappe

import (
	"context"
	"sync"
	"time"

	"frappe/internal/telemetry"
	"frappe/internal/tracing"
)

// The watchdog's serving path absorbs repeated traffic with two layers:
// a TTL verdict cache (an app's verdict rarely changes within seconds),
// and a per-app-ID singleflight so a burst of /check requests for the
// same app costs one upstream crawl, not N. Only conclusive assessments
// — a classification or a deleted-app verdict — are cached; upstream
// failures and breaker rejections are never served stale.
//
// The cache is model-version-aware: every lookup carries the serving
// model's ID, entries stamped by a different model read as stale, and a
// hot swap flushes the table outright — a verdict computed by a
// superseded classifier is never served. In-flight singleflight leaders
// are version-pinned too: a request that arrives after a swap does not
// join a flight still computing on the old model.
//
// Metrics (process default registry):
//
//	frappe_verdict_cache_total{result}        hit / miss / expired / stale_model
//	frappe_verdict_cache_size                 live cached verdicts
//	frappe_verdict_cache_flush_total          wholesale flushes (model swaps)
//	frappe_verdict_singleflight_shared_total  assessments answered by
//	                                          joining an in-flight crawl
var (
	verdictCacheTotal = telemetry.Default().Counter("frappe_verdict_cache_total",
		"Verdict cache lookups, by result.", "result")
	verdictCacheSize = telemetry.Default().Gauge("frappe_verdict_cache_size",
		"Verdicts currently held in the watchdog serving cache.").With()
	verdictCacheFlush = telemetry.Default().Counter("frappe_verdict_cache_flush_total",
		"Wholesale verdict-cache flushes (model swaps).").With()
	verdictShared = telemetry.Default().Counter("frappe_verdict_singleflight_shared_total",
		"Assessments answered by joining another request's in-flight crawl.").With()
)

type verdictEntry struct {
	a   Assessment
	exp time.Time
}

type verdictFlight struct {
	done    chan struct{}
	a       Assessment
	modelID string // model generation this flight computes under
}

// verdictCache is the TTL + singleflight serving layer. Safe for
// concurrent use.
type verdictCache struct {
	ttl time.Duration
	now func() time.Time // test seam

	mu      sync.Mutex
	entries map[string]verdictEntry
	flights map[string]*verdictFlight
}

func newVerdictCache(ttl time.Duration) *verdictCache {
	return &verdictCache{
		ttl:     ttl,
		now:     time.Now,
		entries: make(map[string]verdictEntry),
		flights: make(map[string]*verdictFlight),
	}
}

// cacheable reports whether an assessment is conclusive enough to serve
// again: a verdict or a deleted-app finding, never a transport failure.
func cacheable(a Assessment) bool {
	return a.Error == "" || a.Deleted
}

// do returns appID's assessment under the given model generation: from
// cache when fresh and produced by the same model, by joining an in-flight
// same-model computation when one exists, or by running fn with a context
// carrying this layer's span (so the crawl underneath joins the request
// trace). The returned assessment has Cached set when it was not computed
// by this caller.
func (c *verdictCache) do(ctx context.Context, appID, modelID string, fn func(context.Context) Assessment) Assessment {
	result := "miss"
	c.mu.Lock()
	if e, ok := c.entries[appID]; ok {
		switch {
		case e.a.ModelVersion != modelID:
			// Swap-flush already clears these wholesale; this guards the
			// race where an old-model flight completed after the flush.
			delete(c.entries, appID)
			verdictCacheSize.Set(float64(len(c.entries)))
			result = "stale_model"
		case c.now().Before(e.exp):
			c.mu.Unlock()
			verdictCacheTotal.With("hit").Inc()
			markCacheLookup(ctx, "hit")
			a := e.a
			a.Cached = true
			return a
		default:
			delete(c.entries, appID)
			verdictCacheSize.Set(float64(len(c.entries)))
			result = "expired"
		}
	}
	verdictCacheTotal.With(result).Inc()
	if fl, ok := c.flights[appID]; ok && fl.modelID == modelID {
		c.mu.Unlock()
		markCacheLookup(ctx, result)
		_, sp := tracing.Default().StartChild(ctx, "verdict.singleflight")
		select {
		case <-fl.done:
			sp.End()
			verdictShared.Inc()
			a := fl.a
			a.Cached = true
			return a
		case <-ctx.Done():
			// The joiner's own context gave out, not the upstream: the
			// flight it was waiting on is still running and may succeed.
			// Blaming the upstream here (as this branch once did) made a
			// client-side timeout surface as a 502 and pollute upstream
			// error accounting.
			sp.SetError(ctx.Err())
			sp.End()
			return Assessment{AppID: appID, Error: ctx.Err().Error(), Cause: CauseCanceled}
		}
	}
	fl := &verdictFlight{done: make(chan struct{}), modelID: modelID}
	c.flights[appID] = fl
	c.mu.Unlock()
	markCacheLookup(ctx, result)

	cctx, sp := tracing.Default().StartChild(ctx, "verdict.compute")
	a := fn(cctx)
	sp.End()

	c.mu.Lock()
	fl.a = a
	// A newer-model flight may have replaced this map slot mid-swap; a
	// superseded flight neither clears the slot nor caches its result, so
	// it cannot overwrite the newer model's entry.
	if owner := c.flights[appID] == fl; owner {
		delete(c.flights, appID)
		if cacheable(a) && a.ModelVersion == modelID {
			c.entries[appID] = verdictEntry{a: a, exp: c.now().Add(c.ttl)}
			verdictCacheSize.Set(float64(len(c.entries)))
		}
	}
	c.mu.Unlock()
	close(fl.done)
	return a
}

// markCacheLookup drops a zero-length marker span recording how the
// verdict-cache lookup resolved, so a trace shows hit/miss/expired/
// stale_model at a glance.
func markCacheLookup(ctx context.Context, result string) {
	_, sp := tracing.Default().StartChild(ctx, "verdict.cache")
	sp.SetAttr(tracing.String("result", result))
	sp.End()
}

// flush empties the verdict table — called on model swap so no verdict of
// a superseded model survives. In-flight computations are left to finish;
// their results are version-checked before re-entering the table.
func (c *verdictCache) flush() {
	c.mu.Lock()
	c.entries = make(map[string]verdictEntry)
	verdictCacheSize.Set(0)
	c.mu.Unlock()
	verdictCacheFlush.Inc()
}
