package frappe

import (
	"context"
	"sync"
	"time"

	"frappe/internal/telemetry"
)

// The watchdog's serving path absorbs repeated traffic with two layers:
// a TTL verdict cache (an app's verdict rarely changes within seconds),
// and a per-app-ID singleflight so a burst of /check requests for the
// same app costs one upstream crawl, not N. Only conclusive assessments
// — a classification or a deleted-app verdict — are cached; upstream
// failures and breaker rejections are never served stale.
//
// Metrics (process default registry):
//
//	frappe_verdict_cache_total{result}        hit / miss / expired
//	frappe_verdict_cache_size                 live cached verdicts
//	frappe_verdict_singleflight_shared_total  assessments answered by
//	                                          joining an in-flight crawl
var (
	verdictCacheTotal = telemetry.Default().Counter("frappe_verdict_cache_total",
		"Verdict cache lookups, by result.", "result")
	verdictCacheSize = telemetry.Default().Gauge("frappe_verdict_cache_size",
		"Verdicts currently held in the watchdog serving cache.").With()
	verdictShared = telemetry.Default().Counter("frappe_verdict_singleflight_shared_total",
		"Assessments answered by joining another request's in-flight crawl.").With()
)

type verdictEntry struct {
	a   Assessment
	exp time.Time
}

type verdictFlight struct {
	done chan struct{}
	a    Assessment
}

// verdictCache is the TTL + singleflight serving layer. Safe for
// concurrent use.
type verdictCache struct {
	ttl time.Duration
	now func() time.Time // test seam

	mu      sync.Mutex
	entries map[string]verdictEntry
	flights map[string]*verdictFlight
}

func newVerdictCache(ttl time.Duration) *verdictCache {
	return &verdictCache{
		ttl:     ttl,
		now:     time.Now,
		entries: make(map[string]verdictEntry),
		flights: make(map[string]*verdictFlight),
	}
}

// cacheable reports whether an assessment is conclusive enough to serve
// again: a verdict or a deleted-app finding, never a transport failure.
func cacheable(a Assessment) bool {
	return a.Error == "" || a.Deleted
}

// do returns appID's assessment: from cache when fresh, by joining an
// in-flight computation when one exists, or by running fn. The returned
// assessment has Cached set when it was not computed by this caller.
func (c *verdictCache) do(ctx context.Context, appID string, fn func() Assessment) Assessment {
	c.mu.Lock()
	if e, ok := c.entries[appID]; ok {
		if c.now().Before(e.exp) {
			c.mu.Unlock()
			verdictCacheTotal.With("hit").Inc()
			a := e.a
			a.Cached = true
			return a
		}
		delete(c.entries, appID)
		verdictCacheSize.Set(float64(len(c.entries)))
		verdictCacheTotal.With("expired").Inc()
	} else {
		verdictCacheTotal.With("miss").Inc()
	}
	if fl, ok := c.flights[appID]; ok {
		c.mu.Unlock()
		select {
		case <-fl.done:
			verdictShared.Inc()
			a := fl.a
			a.Cached = true
			return a
		case <-ctx.Done():
			return Assessment{AppID: appID, Error: ctx.Err().Error(), Cause: CauseUpstream}
		}
	}
	fl := &verdictFlight{done: make(chan struct{})}
	c.flights[appID] = fl
	c.mu.Unlock()

	a := fn()

	c.mu.Lock()
	fl.a = a
	delete(c.flights, appID)
	if cacheable(a) {
		c.entries[appID] = verdictEntry{a: a, exp: c.now().Add(c.ttl)}
		verdictCacheSize.Set(float64(len(c.entries)))
	}
	c.mu.Unlock()
	close(fl.done)
	return a
}
