package frappe

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"frappe/internal/telemetry"
	"frappe/internal/tracing"
)

// End-to-end request tracing: one /check against a fault-injected stack
// must yield one trace whose span tree crosses every layer — HTTP
// middleware, verdict cache, singleflight compute, crawl, per-attempt
// httpx retries, SVM inference — with the same trace ID in the Assessment
// JSON, the X-Trace-Id header, and the service's log lines. Faults are
// injected at rate 1.0, so retry and breaker behaviour is deterministic
// without touching the fault RNG.

// walkTrace flattens a trace's span tree (depth first).
func walkTrace(tr tracing.TraceJSON) []*tracing.SpanNode {
	var out []*tracing.SpanNode
	var walk func(n *tracing.SpanNode)
	walk = func(n *tracing.SpanNode) {
		out = append(out, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range tr.Roots {
		walk(r)
	}
	return out
}

func spansNamed(spans []*tracing.SpanNode, name string) []*tracing.SpanNode {
	var out []*tracing.SpanNode
	for _, s := range spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

func attrOf(s *tracing.SpanNode, key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// checkOnce GETs /check for one app and returns the response, the decoded
// assessment, and the stitched trace from the default store.
func checkOnce(t *testing.T, base, appID string) (*http.Response, Assessment, tracing.TraceJSON) {
	t.Helper()
	resp, err := http.Get(base + "/check?app=" + appID)
	if err != nil {
		t.Fatal(err)
	}
	var a Assessment
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		t.Fatalf("decoding assessment: %v", err)
	}
	resp.Body.Close()
	if a.TraceID == "" {
		t.Fatal("assessment carries no trace_id")
	}
	if hdr := resp.Header.Get(telemetry.TraceIDHeader); hdr != a.TraceID {
		t.Fatalf("X-Trace-Id %q != assessment trace_id %q", hdr, a.TraceID)
	}
	tr, ok := tracing.Default().Store().Trace(a.TraceID)
	if !ok {
		t.Fatalf("trace %s not in the store", a.TraceID)
	}
	return resp, a, tr
}

// TestTraceFollowsCheckAcrossStack: with every WOT request 502ing, a cold
// /check produces one span tree covering handler → cache miss →
// singleflight compute → crawl (4 WOT attempts, 3 backoff waits) → SVM
// inference; a second /check for the same app is a cache hit whose trace
// still carries the current request's trace ID.
func TestTraceFollowsCheckAcrossStack(t *testing.T) {
	w, _ := sharedWorld(t)
	clf := trainedClassifier(t)
	ids := liveApps(t, 2)
	if len(ids) < 2 {
		t.Skip("world has too few live apps")
	}

	st, err := StartServicesWithFaults(w, &FaultSpec{
		Seed: 7,
		PerService: map[string]ServiceFaults{
			// Every WOT call fails: 1 first try + 3 retries, then the
			// score degrades to unknown — the verdict itself still lands.
			"wot": {ErrorRate: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	wd, err := NewWatchdogWith(clf, WatchdogConfig{
		GraphURL:         st.GraphURL,
		WOTURL:           st.WOTURL,
		Retries:          3,
		BreakerThreshold: 4,
		VerdictTTL:       time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(WatchdogHandler(wd, 10*time.Second))
	defer srv.Close()

	resp, _, tr := checkOnce(t, srv.URL, ids[0])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/check = %d, want 200 (WOT failure degrades to unknown score)", resp.StatusCode)
	}

	spans := walkTrace(tr)
	for _, name := range []string{
		"http.server", "watchdog.assess", "verdict.cache", "verdict.compute",
		"crawl.app", "crawl.summary", "crawl.install", "crawl.wot",
		"httpx.request", "httpx.attempt", "svm.classify",
	} {
		if len(spansNamed(spans, name)) == 0 {
			t.Errorf("trace has no %q span", name)
		}
	}
	if got := attrOf(spansNamed(spans, "verdict.cache")[0], "result"); got != "miss" {
		t.Errorf("cold verdict.cache result = %q, want miss", got)
	}
	// The WOT transport's retry ladder, span by span: one request wrapper
	// with 4 recorded attempts, each attempt errored, 3 backoff waits.
	var wotReq *tracing.SpanNode
	for _, s := range spansNamed(spans, "httpx.request") {
		if attrOf(s, "service") == "wot" {
			wotReq = s
		}
	}
	if wotReq == nil {
		t.Fatal("no httpx.request span for the wot service")
	}
	if got := attrOf(wotReq, "attempts"); got != "4" {
		t.Errorf("wot request attempts attr = %q, want 4", got)
	}
	wotSpans := walkTrace(tracing.TraceJSON{Roots: []*tracing.SpanNode{wotReq}})
	attempts := spansNamed(wotSpans, "httpx.attempt")
	if len(attempts) != 4 {
		t.Fatalf("wot attempt spans = %d, want 4", len(attempts))
	}
	for i, at := range attempts {
		if at.Error == "" {
			t.Errorf("wot attempt %d recorded no error", i)
		}
	}
	if got := len(spansNamed(wotSpans, "httpx.backoff")); got != 3 {
		t.Errorf("wot backoff spans = %d, want 3", got)
	}

	// Same app again: served from cache, stamped with the NEW request's
	// trace ID, and its much shorter trace shows the hit.
	resp2, a2, tr2 := checkOnce(t, srv.URL, ids[0])
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cached /check = %d, want 200", resp2.StatusCode)
	}
	if !a2.Cached {
		t.Error("second /check not served from cache")
	}
	if a2.TraceID == tr.TraceID {
		t.Error("cached verdict reused the computing request's trace ID")
	}
	cacheSpans := spansNamed(walkTrace(tr2), "verdict.cache")
	if len(cacheSpans) == 0 || attrOf(cacheSpans[0], "result") != "hit" {
		t.Errorf("cached trace verdict.cache spans = %+v, want one with result=hit", cacheSpans)
	}

	// A different app within the breaker cooldown: the WOT circuit opened
	// after 4 consecutive failures, so its trace shows the short-circuit
	// instead of attempt spans.
	resp3, _, tr3 := checkOnce(t, srv.URL, ids[1])
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("post-breaker /check = %d, want 200", resp3.StatusCode)
	}
	spans3 := walkTrace(tr3)
	open := spansNamed(spans3, "httpx.breaker_open")
	if len(open) == 0 {
		t.Fatal("post-breaker trace has no httpx.breaker_open span")
	}
	if open[0].Error == "" {
		t.Error("breaker_open span carries no error")
	}
	for _, s := range spansNamed(spans3, "httpx.request") {
		if attrOf(s, "service") == "wot" {
			if got := len(spansNamed(walkTrace(tracing.TraceJSON{Roots: []*tracing.SpanNode{s}}), "httpx.attempt")); got != 0 {
				t.Errorf("short-circuited wot request made %d attempts, want 0", got)
			}
		}
	}
}

// TestCheckNon200LogsTraceID: a non-200 /check logs through the
// trace-aware slog handler, so the line carries the same trace_id the
// client received — the operator's pivot from a log line to its trace.
func TestCheckNon200LogsTraceID(t *testing.T) {
	w, _ := sharedWorld(t)
	clf := trainedClassifier(t)

	// Find an app deleted from the graph: /check answers 404 (a verdict)
	// and the handler logs the non-200.
	var deleted string
	for _, id := range append(append([]string{}, w.MaliciousIDs...), w.BenignIDs...) {
		if _, err := w.Platform.Lookup(id); err != nil {
			deleted = id
			break
		}
	}
	if deleted == "" {
		t.Skip("world has no deleted apps")
	}

	st, err := StartServices(w)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	wd, err := NewWatchdog(clf, st.GraphURL, st.WOTURL)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(WatchdogHandler(wd, 10*time.Second))
	defer srv.Close()

	var buf bytes.Buffer
	prev := slog.Default()
	slog.SetDefault(telemetry.NewLogger(telemetry.LogConfig{Component: "watchdogd-test", Output: &buf}))
	defer slog.SetDefault(prev)

	resp, a, _ := checkOnce(t, srv.URL, deleted)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/check for deleted app = %d, want 404", resp.StatusCode)
	}
	logged := buf.String()
	if !strings.Contains(logged, "non-OK assessment") {
		t.Fatalf("non-200 /check logged nothing: %q", logged)
	}
	if !strings.Contains(logged, "trace_id="+a.TraceID) {
		t.Errorf("log line lacks trace_id=%s: %q", a.TraceID, logged)
	}
}
