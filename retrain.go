package frappe

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"time"

	"frappe/internal/modelreg"
	"frappe/internal/mypagekeeper"
	"frappe/internal/telemetry"
	"frappe/internal/wal"
)

// Retrainer is the continuous-training driver the paper's §5 deployment
// implies: MyPageKeeper's labeled view keeps growing, so the classifier is
// periodically refit and — only when it does not regress — published to
// the registry for serving processes to hot-swap in.
//
// Each round: snapshot the labeled view, carve off a deterministic
// stratified holdout, cross-validate and train the candidate on the rest
// (the existing parallel CV/train path), then shadow-evaluate candidate
// and incumbent on the same holdout. The candidate is published only when
// its holdout accuracy does not fall more than Tolerance below the
// incumbent's — a regressing model never reaches the registry, let alone
// a serving process.
//
// Metrics (process default registry):
//
//	frappe_retrain_total{outcome}     published / refused / unchanged / error
//	frappe_retrain_duration_seconds   per-round wall clock (histogram)
var (
	retrainTotal = telemetry.Default().Counter("frappe_retrain_total",
		"Retraining rounds, by outcome.", "outcome")
	retrainDuration = telemetry.Default().Histogram("frappe_retrain_duration_seconds",
		"Wall-clock seconds per retraining round.", nil).With()
)

// Retrain outcomes, in RetrainResult.Outcome.
const (
	// RetrainPublished: the candidate passed the gate and is now the
	// registry's active version.
	RetrainPublished = "published"
	// RetrainRefused: the candidate's holdout metrics regressed versus the
	// incumbent; nothing was published.
	RetrainRefused = "refused"
	// RetrainUnchanged: the labeled snapshot is identical to the one the
	// incumbent was trained on; nothing to learn.
	RetrainUnchanged = "unchanged"
)

// RetrainConfig configures a Retrainer.
type RetrainConfig struct {
	// Snapshot produces the current labeled view (true = malicious). The
	// driver calls it once per round.
	Snapshot func(ctx context.Context) ([]AppRecord, []bool, error)
	// Options is the training configuration (features, SVM params, seed,
	// workers) used for both CV and the final fit.
	Options Options
	// HoldoutFraction of each class is withheld from training and used to
	// shadow-evaluate candidate vs incumbent (default 0.2, clamped to
	// [0.05, 0.5]).
	HoldoutFraction float64
	// CVFolds for the manifest's cross-validation metrics (default 5;
	// negative disables CV).
	CVFolds int
	// Tolerance is how much holdout accuracy the candidate may lose versus
	// the incumbent and still be published (default 0: strictly no
	// regression).
	Tolerance float64
	// Compile, when non-nil, compiles the accepted candidate into a
	// serving artifact (exact or RFF) and gates it on the same holdout
	// that gated promotion: a compiled form whose accuracy regresses
	// beyond Compile.Tolerance is refused — the round still publishes, but
	// exact-only, and the refusal is reported in RetrainResult.Compile.
	Compile *CompileConfig
	// Keep bounds registry retention: after a publish, all but the newest
	// Keep versions are GC'd (0 = keep everything).
	Keep int
	// Notes is stamped into published manifests.
	Notes string
	// Logger receives round outcomes; nil means slog.Default.
	Logger *slog.Logger
	// Stream, when non-nil, feeds the retrainer from an ingestion WAL
	// instead of an always-live monitor: before each round the stream's
	// replica monitor is caught up to the log's end, rounds with no new
	// events past the committed consumer offset are skipped without even
	// snapshotting, and the offset is committed after each completed
	// round — a restarted retrainer resumes from the recorded offset
	// rather than re-deciding on data it has already seen.
	Stream *RetrainStream
}

// RetrainStream tails an ingestion write-ahead log for the retrainer.
type RetrainStream struct {
	// Log is the ingestion WAL to tail.
	Log *wal.Log
	// Monitor is the replica the log is replayed into; Snapshot should
	// read its labeled view. It starts empty and is caught up lazily.
	Monitor *mypagekeeper.Monitor
	// Consumer is the offset-tracking consumer name (default "retrainer").
	Consumer string

	// pos is the in-memory replay cursor: every record before it has been
	// applied to Monitor. The committed consumer offset trails it — it
	// records what the retrainer has *decided on*, not merely applied.
	pos uint64
}

func (s *RetrainStream) consumer() string {
	if s.Consumer == "" {
		return "retrainer"
	}
	return s.Consumer
}

// catchUp replays [pos, End) into the replica and returns the new cursor.
func (s *RetrainStream) catchUp() (uint64, error) {
	stats, err := mypagekeeper.Replay(s.Monitor, s.Log, s.pos, nil)
	if err != nil {
		return s.pos, fmt.Errorf("frappe: retrain stream replay from %d: %w", s.pos, err)
	}
	s.pos = stats.Next
	return s.pos, nil
}

// CompileConfig configures the retrainer's compiled-inference step.
type CompileConfig struct {
	// Options is the compile recipe (mode, RFF dimension, seed,
	// quantization); see DefaultCompileOptions.
	Options CompileOptions
	// Tolerance is how much holdout accuracy the compiled form may lose
	// versus the exact candidate and still ship (default 0: strictly no
	// regression).
	Tolerance float64
}

// CompileReport reports the compile step of one retraining round.
type CompileReport struct {
	// Mode is the attempted compile mode ("exact" or "rff").
	Mode string `json:"mode"`
	// Accepted reports whether the compiled artifact passed the parity
	// gate and shipped inside the published payload.
	Accepted bool `json:"accepted"`
	// Reason explains a refusal.
	Reason string `json:"reason,omitempty"`
	// Parity is the measured exact-vs-compiled fidelity on the holdout —
	// populated for refusals too, so the regression is auditable.
	Parity ParityMetrics `json:"parity"`
}

// RetrainResult reports one retraining round.
type RetrainResult struct {
	Outcome string `json:"outcome"`
	// Manifest is the published manifest (Outcome == "published").
	Manifest ModelManifest `json:"manifest,omitempty"`
	// Candidate and Incumbent are the shadow-evaluation metrics on the
	// shared holdout; Incumbent is nil for the first publish.
	Candidate ModelMetrics  `json:"candidate"`
	Incumbent *ModelMetrics `json:"incumbent,omitempty"`
	// Compile reports the compiled-inference step (nil when the round did
	// not reach it or no CompileConfig is set).
	Compile *CompileReport `json:"compile,omitempty"`
	// Reason explains refused/unchanged outcomes.
	Reason string `json:"reason,omitempty"`
}

// Retrainer drives periodic retraining rounds against one registry.
type Retrainer struct {
	reg *ModelRegistry
	cfg RetrainConfig
}

// NewRetrainer validates the configuration and builds a Retrainer.
func NewRetrainer(reg *ModelRegistry, cfg RetrainConfig) (*Retrainer, error) {
	if reg == nil {
		return nil, errors.New("frappe: nil registry")
	}
	if cfg.Snapshot == nil {
		return nil, errors.New("frappe: RetrainConfig.Snapshot is required")
	}
	if cfg.HoldoutFraction == 0 {
		cfg.HoldoutFraction = 0.2
	}
	if cfg.HoldoutFraction < 0.05 {
		cfg.HoldoutFraction = 0.05
	}
	if cfg.HoldoutFraction > 0.5 {
		cfg.HoldoutFraction = 0.5
	}
	if cfg.CVFolds == 0 {
		cfg.CVFolds = 5
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Stream != nil && (cfg.Stream.Log == nil || cfg.Stream.Monitor == nil) {
		return nil, errors.New("frappe: RetrainConfig.Stream needs both Log and Monitor")
	}
	return &Retrainer{reg: reg, cfg: cfg}, nil
}

// RunOnce executes one retraining round. See Retrainer for the protocol.
func (rt *Retrainer) RunOnce(ctx context.Context) (RetrainResult, error) {
	start := time.Now()
	defer func() { retrainDuration.Observe(time.Since(start).Seconds()) }()
	res, err := rt.runOnce(ctx)
	switch {
	case err != nil:
		retrainTotal.With("error").Inc()
	default:
		retrainTotal.With(res.Outcome).Inc()
		// The round decided on everything replayed so far: record that
		// durably, so a restarted retrainer resumes past it. A failed
		// commit only costs a re-decision next round.
		if s := rt.cfg.Stream; s != nil {
			if cerr := s.Log.CommitConsumer(s.consumer(), s.pos); cerr != nil {
				rt.cfg.Logger.Warn("retrain stream offset commit failed", "err", cerr)
			}
		}
	}
	return res, err
}

func (rt *Retrainer) runOnce(ctx context.Context) (RetrainResult, error) {
	// Load the incumbent first: an unchanged corpus means nothing to learn.
	var (
		incumbent    *Classifier
		incManifest  ModelManifest
		hasIncumbent bool
	)
	if clf, m, err := LoadClassifier(rt.reg, 0); err == nil {
		incumbent, incManifest, hasIncumbent = clf, m, true
	} else if !errors.Is(err, modelreg.ErrEmpty) {
		// A corrupt or unreadable incumbent must not block retraining —
		// publishing a healthy candidate is the way out — but it is worth
		// a warning, and the gate below degrades to "no incumbent".
		rt.cfg.Logger.Warn("incumbent unloadable; gate degraded to first-publish", "err", err)
	}

	// WAL-streamed rounds: catch the replica up to the log's end, then
	// skip the round outright — no snapshot, no fingerprint — when
	// nothing has arrived past the offset the last completed round
	// committed. The snapshot can be expensive; the offset compare is two
	// integers.
	if s := rt.cfg.Stream; s != nil {
		streamPos, err := s.catchUp()
		if err != nil {
			return RetrainResult{}, err
		}
		if hasIncumbent {
			committed, err := s.Log.ConsumerOffset(s.consumer())
			if err != nil {
				return RetrainResult{}, fmt.Errorf("frappe: retrain stream offset: %w", err)
			}
			if committed == streamPos {
				rt.cfg.Logger.Info("no WAL events past committed offset; skipping retrain",
					"consumer", s.consumer(), "offset", committed)
				return RetrainResult{Outcome: RetrainUnchanged,
					Reason: fmt.Sprintf("no WAL events past committed offset %d", committed)}, nil
			}
		}
	}

	records, labels, err := rt.cfg.Snapshot(ctx)
	if err != nil {
		return RetrainResult{}, fmt.Errorf("frappe: retrain snapshot: %w", err)
	}
	if len(records) != len(labels) {
		return RetrainResult{}, errors.New("frappe: retrain snapshot records/labels mismatch")
	}
	fingerprint := TrainingFingerprint(records, labels)

	if hasIncumbent && incManifest.TrainingFingerprint == fingerprint {
		rt.cfg.Logger.Info("labeled view unchanged; skipping retrain",
			"fingerprint", fingerprint[:12], "incumbent", incManifest.ModelID())
		return RetrainResult{Outcome: RetrainUnchanged,
			Reason: "training snapshot identical to incumbent's"}, nil
	}

	trainR, trainL, holdR, holdL, err := splitHoldout(records, labels, rt.cfg.HoldoutFraction, rt.seed())
	if err != nil {
		return RetrainResult{}, fmt.Errorf("frappe: retrain split: %w", err)
	}

	var cv Metrics
	if rt.cfg.CVFolds >= 2 {
		cv, err = CrossValidate(trainR, trainL, rt.cfg.CVFolds, rt.cfg.Options)
		if err != nil {
			return RetrainResult{}, fmt.Errorf("frappe: retrain cross-validation: %w", err)
		}
	}
	candidate, err := Train(trainR, trainL, rt.cfg.Options)
	if err != nil {
		return RetrainResult{}, fmt.Errorf("frappe: retrain fit: %w", err)
	}
	candHold, err := Evaluate(candidate, holdR, holdL)
	if err != nil {
		return RetrainResult{}, fmt.Errorf("frappe: shadow-evaluating candidate: %w", err)
	}
	res := RetrainResult{Candidate: ModelMetricsOf(candHold)}

	// The promotion gate: shadow-evaluate the incumbent on the same
	// holdout and refuse a regressing candidate.
	if hasIncumbent {
		incHold, err := Evaluate(incumbent, holdR, holdL)
		if err != nil {
			return RetrainResult{}, fmt.Errorf("frappe: shadow-evaluating incumbent: %w", err)
		}
		inc := ModelMetricsOf(incHold)
		res.Incumbent = &inc
		if candHold.Accuracy() < incHold.Accuracy()-rt.cfg.Tolerance {
			res.Outcome = RetrainRefused
			res.Reason = fmt.Sprintf(
				"holdout accuracy regressed: candidate %.4f vs incumbent %s at %.4f (tolerance %.4f)",
				candHold.Accuracy(), incManifest.ModelID(), incHold.Accuracy(), rt.cfg.Tolerance)
			rt.cfg.Logger.Warn("candidate refused promotion", "reason", res.Reason)
			return res, nil
		}
	}

	// Compile step: the accepted candidate is compiled into a serving
	// artifact and the compiled form is gated on the very same holdout. A
	// refused compile never blocks the round — the exact model publishes
	// alone — but the refusal and its parity numbers are reported.
	var compileInfo *modelreg.CompileInfo
	if cc := rt.cfg.Compile; cc != nil {
		parity, cerr := CompileClassifier(candidate, holdR, holdL, cc.Options, cc.Tolerance)
		report := &CompileReport{Mode: cc.Options.Mode.String(), Parity: parity}
		switch {
		case errors.Is(cerr, ErrCompileRefused):
			report.Reason = cerr.Error()
			rt.cfg.Logger.Warn("compiled artifact refused; publishing exact model",
				"mode", report.Mode, "reason", cerr.Error())
		case cerr != nil:
			return RetrainResult{}, fmt.Errorf("frappe: compiling candidate: %w", cerr)
		default:
			report.Accepted = true
			compileInfo = &modelreg.CompileInfo{
				Mode:             report.Mode,
				Quantized:        cc.Options.Quantize,
				HoldoutAccuracy:  parity.CompiledAccuracy,
				AgreementRate:    parity.AgreementRate,
				MaxDecisionDrift: parity.MaxDecisionDrift,
			}
			if cc.Options.Mode == CompileRFF {
				compileInfo.RFFDim = cc.Options.RFFDim
				compileInfo.Seed = cc.Options.Seed
			}
			rt.cfg.Logger.Info("candidate compiled",
				"mode", report.Mode, "compiled", candidate.Compiled().String(),
				"agreement", parity.AgreementRate, "max_drift", parity.MaxDecisionDrift)
		}
		res.Compile = report
	}

	holdout := res.Candidate
	m, err := PublishClassifier(rt.reg, candidate, ModelManifest{
		TrainingFingerprint: fingerprint,
		TrainedRecords:      len(trainR),
		CV:                  ModelMetricsOf(cv),
		Holdout:             &holdout,
		Compile:             compileInfo,
		Notes:               rt.cfg.Notes,
	})
	if err != nil {
		return RetrainResult{}, fmt.Errorf("frappe: publishing candidate: %w", err)
	}
	res.Outcome = RetrainPublished
	res.Manifest = m
	rt.cfg.Logger.Info("model published",
		"model", m.ModelID(), "feature_mode", m.FeatureMode,
		"trained_records", m.TrainedRecords,
		"holdout_accuracy", holdout.Accuracy, "cv_accuracy", m.CV.Accuracy)
	if rt.cfg.Keep > 0 {
		if removed, err := rt.reg.GC(rt.cfg.Keep); err != nil {
			rt.cfg.Logger.Warn("registry GC failed", "err", err)
		} else if removed > 0 {
			rt.cfg.Logger.Info("registry GC", "removed_versions", removed, "keep", rt.cfg.Keep)
		}
	}
	return res, nil
}

func (rt *Retrainer) seed() int64 {
	if rt.cfg.Options.Seed != 0 {
		return rt.cfg.Options.Seed
	}
	return 1
}

// Run executes rounds every interval until ctx is cancelled, starting with
// one immediately. Per-round errors are logged, not fatal: a transient
// snapshot failure must not kill the training loop.
func (rt *Retrainer) Run(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		if _, err := rt.RunOnce(ctx); err != nil && ctx.Err() == nil {
			rt.cfg.Logger.Error("retraining round failed", "err", err)
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// splitHoldout carves a stratified holdout off a labeled snapshot: frac of
// each class, selection driven by the seed only — the same snapshot and
// seed always produce the same split, so candidate and incumbent are
// always judged on identical data.
func splitHoldout(records []AppRecord, labels []bool, frac float64, seed int64) (
	trainR []AppRecord, trainL []bool, holdR []AppRecord, holdL []bool, err error) {
	var benign, malicious []int
	for i, l := range labels {
		if l {
			malicious = append(malicious, i)
		} else {
			benign = append(benign, i)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	take := func(idx []int) map[int]bool {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		n := int(float64(len(idx)) * frac)
		if n < 1 && len(idx) > 1 {
			n = 1
		}
		out := make(map[int]bool, n)
		for _, i := range idx[:n] {
			out[i] = true
		}
		return out
	}
	hold := take(benign)
	for i := range take(malicious) {
		hold[i] = true
	}
	if len(hold) == 0 || len(hold) == len(records) {
		return nil, nil, nil, nil, fmt.Errorf(
			"cannot split %d records into train + holdout at fraction %.2f", len(records), frac)
	}
	for i := range records {
		if hold[i] {
			holdR = append(holdR, records[i])
			holdL = append(holdL, labels[i])
		} else {
			trainR = append(trainR, records[i])
			trainL = append(trainL, labels[i])
		}
	}
	return trainR, trainL, holdR, holdL, nil
}
