// Command frappe evaluates Facebook-style app IDs on demand against a
// Graph-API endpoint and a WOT endpoint, using a trained classifier — the
// paper's "browser extension" scenario (§5.1). Pair it with frappeserve,
// which runs the simulated services and writes the model file.
//
// Usage:
//
//	frappe -graph URL -wot URL -model frappe-model.gob APPID [APPID...]
//
// Exit status is 2 when any evaluated app is classified malicious.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"frappe"
	"frappe/internal/telemetry"
)

func main() {
	graphURL := flag.String("graph", "", "Graph API base URL (required)")
	wotURL := flag.String("wot", "", "WOT base URL (required)")
	modelPath := flag.String("model", "frappe-model.gob", "trained classifier file")
	jsonOut := flag.Bool("json", false, "emit one JSON assessment per line")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "log as JSON instead of text")
	flag.Parse()

	logger := telemetry.SetupProcessLogger(telemetry.LogConfig{
		Component: "frappe", Level: *logLevel, JSON: *logJSON,
	})

	if *graphURL == "" || *wotURL == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: frappe -graph URL -wot URL [-model FILE] APPID...")
		os.Exit(1)
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		logger.Error("opening model", "path", *modelPath, "err", err)
		os.Exit(1)
	}
	wd, err := frappe.NewWatchdogFrom(f, *graphURL, *wotURL)
	f.Close()
	if err != nil {
		logger.Error("loading watchdog", "err", err)
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	anyMalicious := false
	for _, appID := range flag.Args() {
		if *jsonOut {
			a := wd.Assess(context.Background(), appID)
			if a.Malicious {
				anyMalicious = true
			}
			if err := enc.Encode(a); err != nil {
				logger.Error("encoding assessment", "err", err)
				os.Exit(1)
			}
			continue
		}
		v, err := wd.Evaluate(context.Background(), appID)
		switch {
		case errors.Is(err, frappe.ErrNotClassifiable):
			fmt.Printf("%s\tDELETED (removed from the graph — the paper treats this as confirmation)\n", appID)
		case err != nil:
			logger.Error("evaluating app", "app", appID, "err", err)
			os.Exit(1)
		case v.Malicious:
			anyMalicious = true
			fmt.Printf("%s\tMALICIOUS (score %+.3f)\n", appID, v.Score)
		default:
			fmt.Printf("%s\tbenign (score %+.3f)\n", appID, v.Score)
		}
	}
	if anyMalicious {
		os.Exit(2)
	}
}
