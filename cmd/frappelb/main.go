// Command frappelb is the watchdog fleet's front door: it routes
// /check?app=ID to one of N watchdogd replicas over a consistent-hash
// ring keyed on the app ID, health-checks the membership, and fails
// requests over along the ring when a member dies mid-flight — so a
// client sees one endpoint while any single replica can be killed and
// restarted underneath it without a failed request.
//
// Usage:
//
//	frappelb -member w1=http://127.0.0.1:8466 \
//	         -member w2=http://127.0.0.1:8467 \
//	         -member w3=http://127.0.0.1:8468 \
//	         [-listen 127.0.0.1:8400] [-vnodes 128]
//	         [-probe-interval 500ms] [-probe-timeout 2s]
//	         [-route-timeout 15s] [-member-timeout 5s]
//	         [-drain-grace 2s]
//	         [-debug-addr ""] [-log-level info] [-log-json]
//
// Endpoints:
//
//	GET  /check?app=ID     assessment from the app's ring owner, failing
//	                       over clockwise on transport error / 5xx / open
//	                       breaker; X-Cluster-Member names the replica
//	                       that answered
//	GET  /rank?app=A&app=B ranked batch, routed by the first app ID
//	GET  /model            serving-model manifest from a healthy member
//	POST /model/reload     fan out to every member; 200 once the fleet
//	                       converges on one model version
//	GET  /cluster          membership: health, ring shares, routed
//	                       counts, per-member model versions
//	GET  /metrics          aggregated fleet metrics, one block per member
//	                       re-labelled member="<id>", plus the LB's own
//	                       frappe_cluster_* series
//	GET  /healthz          the LB's own liveness (503 while draining)
//
// Replicas coordinate through the model registry (point them all at one
// -registry DIR; POST /model/reload here converges them in one round)
// and bootstrap blacklist state from the ingestion WAL (-wal-replay on
// each watchdogd). The LB itself is stateless — restart it freely.
//
// SIGINT/SIGTERM drain like watchdogd: /healthz flips to 503 for
// -drain-grace before Server.Shutdown finishes in-flight requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"frappe/internal/cluster"
	"frappe/internal/telemetry"
)

// memberFlags collects repeatable -member id=url flags.
type memberFlags []cluster.Member

func (m *memberFlags) String() string {
	parts := make([]string, len(*m))
	for i, mem := range *m {
		parts[i] = mem.ID + "=" + mem.URL
	}
	return strings.Join(parts, ",")
}

func (m *memberFlags) Set(v string) error {
	id, url, ok := strings.Cut(v, "=")
	if !ok || id == "" || url == "" {
		return fmt.Errorf("want id=url, got %q", v)
	}
	*m = append(*m, cluster.Member{ID: id, URL: strings.TrimRight(url, "/")})
	return nil
}

func main() {
	var members memberFlags
	flag.Var(&members, "member", "replica as id=url (repeatable; at least one required)")
	listen := flag.String("listen", "127.0.0.1:8400", "listen address")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per member on the hash ring (0 = default 128)")
	probeInterval := flag.Duration("probe-interval", 0, "health poll cadence (0 = default 500ms)")
	probeTimeout := flag.Duration("probe-timeout", 0, "per-probe timeout (0 = default 2s)")
	routeTimeout := flag.Duration("route-timeout", 0,
		"bound on one proxied request across all fail-over attempts (0 = default 15s)")
	memberTimeout := flag.Duration("member-timeout", 0,
		"bound on one attempt against one member (0 = httpx default)")
	breakerThreshold := flag.Int("breaker-threshold", 0,
		"consecutive member failures before its circuit opens (0 = default, negative = disabled)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0,
		"how long an open member circuit waits before probing (0 = default)")
	drainGrace := flag.Duration("drain-grace", 2*time.Second,
		"how long /healthz reports 503 draining before Shutdown (0 = immediate)")
	debugAddr := flag.String("debug-addr", "",
		"debug listen address for /debug/vars and /debug/pprof (empty = disabled; /metrics is on the main port)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "log as JSON instead of text")
	flag.Parse()

	logger := telemetry.SetupProcessLogger(telemetry.LogConfig{
		Component: "frappelb", Level: *logLevel, JSON: *logJSON,
	})

	if len(members) == 0 {
		fmt.Fprintln(os.Stderr,
			"usage: frappelb -member id=url [-member id=url ...] [-listen ADDR]")
		os.Exit(1)
	}

	c, err := cluster.New(cluster.Config{
		Members:          members,
		VirtualNodes:     *vnodes,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		RouteTimeout:     *routeTimeout,
		MemberTimeout:    *memberTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
	})
	if err != nil {
		logger.Error("configuring cluster", "err", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	c.Start(ctx)

	if *debugAddr != "" {
		ds, derr := telemetry.StartDebugServer(*debugAddr, nil)
		if derr != nil {
			logger.Error("starting debug server", "addr", *debugAddr, "err", derr)
			os.Exit(1)
		}
		defer ds.Close()
		logger.Info("debug server listening", "addr", ds.Addr)
	}

	srv := &http.Server{
		Addr: *listen,
		// The middleware starts the lb-side trace root, which the httpx
		// member client propagates to replicas as traceparent — one trace
		// spans client → LB → member.
		Handler:           telemetry.Middleware(nil, "frappelb", c.Handler()),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	for _, m := range members {
		logger.Info("member configured", "id", m.ID, "url", m.URL)
	}
	logger.Info("front door routing", "addr", *listen, "members", len(members))

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Error("server exited", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		c.SetDraining(true)
		if *drainGrace > 0 {
			logger.Info("draining: healthz now 503", "grace", *drainGrace)
			time.Sleep(*drainGrace)
		}
		logger.Info("shutting down; draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Error("graceful shutdown", "err", err)
			os.Exit(1)
		}
	}
	logger.Info("stopped")
}
