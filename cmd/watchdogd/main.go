// Command watchdogd serves FRAppE as the paper's envisioned "independent
// watchdog for app assessment and ranking": an HTTP service that crawls
// any app ID on demand against a Graph-API/WOT endpoint pair and returns a
// verdict.
//
// Usage:
//
//	watchdogd -graph URL -wot URL -model frappe-model.gob [-listen :8080]
//	          [-timeout 5s] [-retries 2]
//	          [-breaker-threshold 5] [-breaker-cooldown 10s]
//	          [-verdict-ttl 30s]
//	          [-debug-addr 127.0.0.1:0] [-log-level info] [-log-json]
//
// Endpoints:
//
//	GET /check?app=APPID         one assessment: 200 verdict, 404 deleted
//	                             (still a verdict), 502 upstream failure,
//	                             503 + Retry-After when the upstream
//	                             circuit breaker is open
//	GET /rank?app=A&app=B        ranked assessments, most suspicious first
//	GET /healthz                 liveness
//
// Verdicts are cached for -verdict-ttl (singleflighted per app ID while
// being computed), so repeated /check traffic for hot apps costs one
// upstream crawl per TTL window.
//
// The debug listener serves /metrics (Prometheus text format),
// /debug/vars (expvar) and /debug/pprof; its resolved address is printed
// at startup. -debug-addr "" disables it.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"frappe"
	"frappe/internal/telemetry"
)

func main() {
	graphURL := flag.String("graph", "", "Graph API base URL (required)")
	wotURL := flag.String("wot", "", "WOT base URL (required)")
	modelPath := flag.String("model", "frappe-model.gob", "trained classifier file")
	listen := flag.String("listen", "127.0.0.1:8466", "listen address")
	rankWorkers := flag.Int("rank-workers", 0, "bounded fan-out width for /rank (0 = default 8)")
	timeout := flag.Duration("timeout", 5*time.Second,
		"per-attempt upstream HTTP timeout (negative = none)")
	retries := flag.Int("retries", 0, "extra upstream attempts per fetch (0 = default 2, negative = none)")
	breakerThreshold := flag.Int("breaker-threshold", 0,
		"consecutive upstream failures before the circuit opens (0 = default 5, negative = disabled)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0,
		"how long an open circuit waits before probing (0 = default 10s)")
	verdictTTL := flag.Duration("verdict-ttl", 30*time.Second,
		"how long verdicts are served from cache (0 = no caching)")
	debugAddr := flag.String("debug-addr", "127.0.0.1:0",
		"debug listen address for /metrics, /debug/vars and /debug/pprof (empty = disabled)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "log as JSON instead of text")
	flag.Parse()

	logger := telemetry.SetupProcessLogger(telemetry.LogConfig{
		Component: "watchdogd", Level: *logLevel, JSON: *logJSON,
	})

	if *graphURL == "" || *wotURL == "" {
		fmt.Fprintln(os.Stderr, "usage: watchdogd -graph URL -wot URL [-model FILE] [-listen ADDR]")
		os.Exit(1)
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		logger.Error("opening model", "path", *modelPath, "err", err)
		os.Exit(1)
	}
	wd, err := frappe.NewWatchdogFromWith(f, frappe.WatchdogConfig{
		GraphURL:         *graphURL,
		WOTURL:           *wotURL,
		Timeout:          *timeout,
		Retries:          *retries,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		VerdictTTL:       *verdictTTL,
	})
	f.Close()
	if err != nil {
		logger.Error("loading watchdog", "err", err)
		os.Exit(1)
	}
	wd.RankWorkers = *rankWorkers

	if *debugAddr != "" {
		ds, err := telemetry.StartDebugServer(*debugAddr, nil)
		if err != nil {
			logger.Error("starting debug server", "addr", *debugAddr, "err", err)
			os.Exit(1)
		}
		defer ds.Close()
		fmt.Printf("debug/metrics: http://%s/metrics (pprof at /debug/pprof/)\n", ds.Addr)
		logger.Info("debug server listening", "addr", ds.Addr)
	}

	srv := &http.Server{
		Addr:              *listen,
		Handler:           frappe.WatchdogHandler(wd, 15*time.Second),
		ReadHeaderTimeout: 5 * time.Second,
	}
	logger.Info("assessing apps", "addr", *listen, "graph", *graphURL, "wot", *wotURL)
	if err := srv.ListenAndServe(); err != http.ErrServerClosed {
		logger.Error("server exited", "err", err)
		os.Exit(1)
	}
}
