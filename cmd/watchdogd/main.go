// Command watchdogd serves FRAppE as the paper's envisioned "independent
// watchdog for app assessment and ranking": an HTTP service that crawls
// any app ID on demand against a Graph-API/WOT endpoint pair and returns a
// verdict.
//
// Usage:
//
//	watchdogd -graph URL -wot URL (-model frappe-model.gob | -registry DIR)
//	          [-listen :8080] [-reload-interval 15s]
//	          [-timeout 5s] [-retries 2]
//	          [-breaker-threshold 5] [-breaker-cooldown 10s]
//	          [-verdict-ttl 30s] [-wal-dir DIR] [-wal-replay]
//	          [-member-id w1] [-drain-grace 2s]
//	          [-debug-addr 127.0.0.1:0] [-log-level info] [-log-json]
//
// Endpoints:
//
//	GET  /check?app=APPID        one assessment: 200 verdict, 404 deleted
//	                             (still a verdict), 502 upstream failure,
//	                             503 + Retry-After when the upstream
//	                             circuit breaker is open
//	GET  /rank?app=A&app=B       ranked assessments, most suspicious first
//	GET  /model                  manifest of the serving model
//	POST /model/reload           poll the registry now and hot-swap if a
//	                             new version is active
//	GET  /metrics                Prometheus text exposition
//	GET  /healthz                liveness (503 "draining" during shutdown)
//
// With -registry, the classifier is loaded from the registry's active
// version (checksum-verified — a corrupt artifact is rejected with a clear
// error) and the daemon becomes a live consumer: it polls the registry
// every -reload-interval and on SIGHUP, validating each new version before
// swapping it in with zero dropped in-flight requests. Assessments carry
// the model_version that produced them.
//
// Verdicts are cached for -verdict-ttl (singleflighted per app ID while
// being computed), so repeated /check traffic for hot apps costs one
// upstream crawl per TTL window. The cache is flushed on every model swap.
//
// With -wal-dir, the daemon opens the ingestion write-ahead log the
// monitored stream was generated under and reports its committed consumer
// offset and replay lag (frappe_wal_consumer_* gauges). Adding -wal-replay
// rebuilds the monitor's blacklist state into a local replica at startup
// and commits the "watchdogd" consumer offset — the first step toward
// propagating blacklist updates to a fleet of watchdogs.
//
// SIGINT/SIGTERM drain in two stages: /healthz flips to 503 "draining"
// for -drain-grace (so a health-polling front door de-routes this replica
// first), then http.Server.Shutdown finishes in-flight requests. The debug listener serves /metrics (Prometheus text
// format), /debug/vars (expvar) and /debug/pprof; its resolved address is
// printed at startup. -debug-addr "" disables it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"frappe"
	"frappe/internal/mypagekeeper"
	"frappe/internal/telemetry"
	"frappe/internal/wal"
)

func main() {
	graphURL := flag.String("graph", "", "Graph API base URL (required)")
	wotURL := flag.String("wot", "", "WOT base URL (required)")
	modelPath := flag.String("model", "frappe-model.gob", "trained classifier file (ignored with -registry)")
	registryDir := flag.String("registry", "",
		"model registry directory; serve its active version and hot-swap new ones (empty = flat -model file)")
	reloadInterval := flag.Duration("reload-interval", 15*time.Second,
		"registry poll cadence for new model versions (0 = poll only on SIGHUP or POST /model/reload)")
	listen := flag.String("listen", "127.0.0.1:8466", "listen address")
	rankWorkers := flag.Int("rank-workers", 0, "bounded fan-out width for /rank (0 = default 8)")
	timeout := flag.Duration("timeout", 5*time.Second,
		"per-attempt upstream HTTP timeout (negative = none)")
	retries := flag.Int("retries", 0, "extra upstream attempts per fetch (0 = default 2, negative = none)")
	breakerThreshold := flag.Int("breaker-threshold", 0,
		"consecutive upstream failures before the circuit opens (0 = default 5, negative = disabled)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0,
		"how long an open circuit waits before probing (0 = default 10s)")
	verdictTTL := flag.Duration("verdict-ttl", 30*time.Second,
		"how long verdicts are served from cache (0 = no caching)")
	walDir := flag.String("wal-dir", "",
		"ingestion WAL directory to track (reports consumer offset and replay lag)")
	walReplay := flag.Bool("wal-replay", false,
		"replay the WAL in -wal-dir into a local blacklist replica at startup and commit the watchdogd consumer offset")
	memberID := flag.String("member-id", "",
		"stable cluster member identity; stamped on responses as X-Frappe-Member (empty = standalone)")
	drainGrace := flag.Duration("drain-grace", 2*time.Second,
		"how long /healthz reports 503 draining before Shutdown, so a front door de-routes this replica first (0 = immediate)")
	debugAddr := flag.String("debug-addr", "127.0.0.1:0",
		"debug listen address for /metrics, /debug/vars and /debug/pprof (empty = disabled)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "log as JSON instead of text")
	flag.Parse()

	logger := telemetry.SetupProcessLogger(telemetry.LogConfig{
		Component: "watchdogd", Level: *logLevel, JSON: *logJSON,
	})

	if *graphURL == "" || *wotURL == "" {
		fmt.Fprintln(os.Stderr,
			"usage: watchdogd -graph URL -wot URL (-model FILE | -registry DIR) [-listen ADDR]")
		os.Exit(1)
	}
	wdCfg := frappe.WatchdogConfig{
		GraphURL:         *graphURL,
		WOTURL:           *wotURL,
		Timeout:          *timeout,
		Retries:          *retries,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		VerdictTTL:       *verdictTTL,
	}

	var (
		wd  *frappe.Watchdog
		rel *frappe.Reloader
		err error
	)
	if *registryDir != "" {
		reg, rerr := frappe.OpenModelRegistry(*registryDir)
		if rerr != nil {
			logger.Error("opening model registry", "dir", *registryDir, "err", rerr)
			os.Exit(1)
		}
		// A checksum-mismatched or otherwise corrupt active artifact is a
		// hard startup error: better no watchdog than one serving garbage.
		wd, err = frappe.NewWatchdogFromRegistry(reg, wdCfg)
		if err != nil {
			logger.Error("loading model from registry", "dir", *registryDir, "err", err)
			os.Exit(1)
		}
		rel = frappe.NewReloader(wd, reg, frappe.ReloadConfig{
			Interval: *reloadInterval,
			Logger:   logger,
		})
	} else {
		f, ferr := os.Open(*modelPath)
		if ferr != nil {
			logger.Error("opening model", "path", *modelPath, "err", ferr)
			os.Exit(1)
		}
		wd, err = frappe.NewWatchdogFromWith(f, wdCfg)
		f.Close()
		if err != nil {
			logger.Error("loading watchdog", "err", err)
			os.Exit(1)
		}
	}
	wd.RankWorkers = *rankWorkers

	// Announce what is actually serving — version, feature mode and the
	// metrics it shipped with — not just a file path.
	m := wd.ServingManifest()
	logger.Info("model loaded",
		"model", m.ModelID(), "feature_mode", m.FeatureMode,
		"trained_records", m.TrainedRecords,
		"cv_accuracy", m.CV.Accuracy, "cv_fp_rate", m.CV.FPRate, "cv_fn_rate", m.CV.FNRate,
		"created_at", m.CreatedAt)

	if *walReplay && *walDir == "" {
		logger.Error("-wal-replay requires -wal-dir")
		os.Exit(1)
	}
	if *walDir != "" {
		wlog, werr := wal.Open(*walDir, wal.Options{})
		if werr != nil {
			logger.Error("opening ingestion WAL", "dir", *walDir, "err", werr)
			os.Exit(1)
		}
		defer wlog.Close()
		off, werr := wlog.ConsumerOffset("watchdogd")
		if werr != nil {
			logger.Error("reading watchdogd consumer offset", "err", werr)
			os.Exit(1)
		}
		logger.Info("ingestion WAL opened", "dir", *walDir,
			"records", wlog.End(), "consumer_offset", off, "lag", wlog.End()-off)
		if *walReplay {
			replica := mypagekeeper.New(mypagekeeper.DefaultClassifierConfig())
			stats, werr := mypagekeeper.Replay(replica, wlog, 0, nil)
			if werr != nil {
				logger.Error("replaying ingestion WAL", "err", werr)
				os.Exit(1)
			}
			if werr := wlog.CommitConsumer("watchdogd", stats.Next); werr != nil {
				logger.Error("committing watchdogd consumer offset", "err", werr)
				os.Exit(1)
			}
			logger.Info("WAL replayed into blacklist replica",
				"records", stats.Records, "posts", stats.Posts,
				"blacklists", stats.Blacklists,
				"flagged_urls", replica.Stats().URLsFlagged)
		}
	}

	if *debugAddr != "" {
		ds, err := telemetry.StartDebugServer(*debugAddr, nil)
		if err != nil {
			logger.Error("starting debug server", "addr", *debugAddr, "err", err)
			os.Exit(1)
		}
		defer ds.Close()
		fmt.Printf("debug/metrics: http://%s/metrics (pprof at /debug/pprof/)\n", ds.Addr)
		logger.Info("debug server listening", "addr", ds.Addr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if rel != nil {
		if *reloadInterval > 0 {
			go rel.Watch(ctx)
		}
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for {
				select {
				case <-ctx.Done():
					return
				case <-hup:
					logger.Info("SIGHUP: checking registry for a new model version")
					st := rel.Check(ctx)
					logger.Info("reload check done", "outcome", st.Outcome,
						"serving", st.Serving.ModelID())
				}
			}
		}()
	}

	health := frappe.NewHealthState()
	srv := &http.Server{
		Addr: *listen,
		Handler: frappe.NewWatchdogHandler(wd, frappe.HandlerConfig{
			Timeout:  15 * time.Second,
			Reloader: rel,
			Health:   health,
			MemberID: *memberID,
		}),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("assessing apps", "addr", *listen, "member", *memberID,
		"graph", *graphURL, "wot", *wotURL)

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Error("server exited", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		// Drain in two stages: flip /healthz to 503 so the front door's
		// prober de-routes this replica, hold the grace window while it
		// notices, then let Shutdown finish whatever is still in flight.
		health.SetDraining(true)
		if *drainGrace > 0 {
			logger.Info("draining: healthz now 503", "grace", *drainGrace)
			time.Sleep(*drainGrace)
		}
		logger.Info("shutting down; draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Error("graceful shutdown", "err", err)
			os.Exit(1)
		}
	}
	logger.Info("stopped")
}
