// Command watchdogd serves FRAppE as the paper's envisioned "independent
// watchdog for app assessment and ranking": an HTTP service that crawls
// any app ID on demand against a Graph-API/WOT endpoint pair and returns a
// verdict.
//
// Usage:
//
//	watchdogd -graph URL -wot URL -model frappe-model.gob [-listen :8080]
//
// Endpoints:
//
//	GET /check?app=APPID         one assessment
//	GET /rank?app=A&app=B        ranked assessments, most suspicious first
//	GET /healthz                 liveness
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"frappe"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("watchdogd: ")
	graphURL := flag.String("graph", "", "Graph API base URL (required)")
	wotURL := flag.String("wot", "", "WOT base URL (required)")
	modelPath := flag.String("model", "frappe-model.gob", "trained classifier file")
	listen := flag.String("listen", "127.0.0.1:8466", "listen address")
	flag.Parse()

	if *graphURL == "" || *wotURL == "" {
		fmt.Fprintln(os.Stderr, "usage: watchdogd -graph URL -wot URL [-model FILE] [-listen ADDR]")
		os.Exit(1)
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	wd, err := frappe.NewWatchdogFrom(f, *graphURL, *wotURL)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{
		Addr:              *listen,
		Handler:           frappe.WatchdogHandler(wd, 15*time.Second),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("assessing apps on http://%s (try /check?app=APPID)", *listen)
	if err := srv.ListenAndServe(); err != http.ErrServerClosed {
		log.Fatal(err)
	}
}
