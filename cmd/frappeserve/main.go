// Command frappeserve generates a synthetic world, exposes its services
// (Graph API, bit.ly, WOT, Social Bakers, indirection redirector) as
// loopback HTTP servers, trains a FRAppE Lite classifier on the world's
// D-Sample, writes the model to disk, and then serves until interrupted.
//
// Together with cmd/frappe it forms the paper's envisioned deployment: a
// watchdog that evaluates any app ID on demand.
//
// Usage:
//
//	frappeserve [-scale 0.02] [-seed ...] [-model frappe-model.gob]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"frappe"
	"frappe/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("frappeserve: ")
	scale := flag.Float64("scale", 0.02, "world scale")
	seed := flag.Int64("seed", 0, "world seed (0 = default)")
	modelPath := flag.String("model", "frappe-model.gob", "where to write the trained classifier")
	flag.Parse()

	cfg := synth.Default(*scale)
	if *seed != 0 {
		cfg.Seed = *seed
	}
	log.Printf("generating world at scale %.2f ...", *scale)
	w := frappe.GenerateWorld(cfg)

	d, err := frappe.BuildDatasets(context.Background(), w)
	if err != nil {
		log.Fatal(err)
	}
	records, labels := frappe.LabeledSample(d)
	clf, err := frappe.Train(records, labels, frappe.Options{Features: frappe.LiteFeatures()})
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := clf.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	st, err := frappe.StartServices(w)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	fmt.Printf("model written to %s\n", *modelPath)
	fmt.Printf("graph API:    %s\n", st.GraphURL)
	fmt.Printf("WOT:          %s\n", st.WOTURL)
	fmt.Printf("bit.ly:       %s\n", st.BitlyURL)
	fmt.Printf("social bakers:%s\n", st.SocialBakersURL)
	fmt.Printf("redirector:   %s\n", st.RedirectorURL)

	// Offer one live app of each class to try.
	var benign, malicious string
	for _, id := range w.BenignIDs {
		if _, err := w.Platform.Lookup(id); err == nil {
			benign = id
			break
		}
	}
	for _, id := range w.MaliciousIDs {
		if _, err := w.Platform.Lookup(id); err == nil {
			malicious = id
			break
		}
	}
	fmt.Printf("\ntry:\n  frappe -graph %s -wot %s -model %s %s %s\n",
		st.GraphURL, st.WOTURL, *modelPath, benign, malicious)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	<-ctx.Done()
	log.Print("shutting down")
}
