// Command frappeserve generates a synthetic world, exposes its services
// (Graph API, bit.ly, WOT, Social Bakers, indirection redirector) as
// loopback HTTP servers, trains a FRAppE Lite classifier on the world's
// D-Sample, writes the model to disk, and then serves until interrupted.
//
// Together with cmd/frappe it forms the paper's envisioned deployment: a
// watchdog that evaluates any app ID on demand.
//
// Usage:
//
//	frappeserve [-scale 0.02] [-seed ...] [-model frappe-model.gob]
//	            [-registry DIR] [-wal-dir DIR] [-wal-replay]
//	            [-debug-addr 127.0.0.1:0] [-log-level info] [-log-json]
//	            [-fault-error-rate 0] [-fault-hang-rate 0]
//	            [-fault-latency 0] [-fault-seed 1]
//
// The fault flags inject deterministic, seeded failures into every served
// service (502s, hangs, latency) — the paper's hostile crawl environment
// on demand, for exercising client-side retries and circuit breakers.
//
// The debug listener serves /metrics (Prometheus text format),
// /debug/vars (expvar) and /debug/pprof; its resolved address is printed
// at startup. -debug-addr "" disables it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"frappe"
	"frappe/internal/synth"
	"frappe/internal/telemetry"
)

func main() {
	scale := flag.Float64("scale", 0.02, "world scale")
	seed := flag.Int64("seed", 0, "world seed (0 = default)")
	modelPath := flag.String("model", "frappe-model.gob", "where to write the trained classifier")
	registryDir := flag.String("registry", "",
		"also publish the trained classifier to this model registry (empty = flat file only)")
	debugAddr := flag.String("debug-addr", "127.0.0.1:0",
		"debug listen address for /metrics, /debug/vars and /debug/pprof (empty = disabled)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "log as JSON instead of text")
	faultErrorRate := flag.Float64("fault-error-rate", 0,
		"probability [0,1] a service request is answered with an injected 502")
	faultHangRate := flag.Float64("fault-hang-rate", 0,
		"probability [0,1] a service request hangs until the client gives up")
	faultLatency := flag.Duration("fault-latency", 0, "latency added to every service request")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the fault-injection RNG")
	walDir := flag.String("wal-dir", "",
		"write a durable ingestion WAL under world generation to this directory (empty = no WAL)")
	walReplay := flag.Bool("wal-replay", false,
		"replay an existing WAL in -wal-dir before generating, resuming past the replayed prefix")
	flag.Parse()

	logger := telemetry.SetupProcessLogger(telemetry.LogConfig{
		Component: "frappeserve", Level: *logLevel, JSON: *logJSON,
	})

	cfg := synth.Default(*scale)
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *walReplay && *walDir == "" {
		logger.Error("-wal-replay requires -wal-dir")
		os.Exit(1)
	}
	cfg.WALDir = *walDir
	cfg.WALResume = *walReplay
	logger.Info("generating world", "scale", *scale, "seed", cfg.Seed,
		"wal_dir", *walDir, "wal_replay", *walReplay)
	w := frappe.GenerateWorld(cfg)
	if *walReplay {
		logger.Info("WAL resume complete", "already_logged", w.WALResumed)
	}

	d, err := frappe.BuildDatasets(context.Background(), w)
	if err != nil {
		logger.Error("building datasets", "err", err)
		os.Exit(1)
	}
	records, labels := frappe.LabeledSample(d)
	logger.Info("training classifier", "records", len(records))
	clf, err := frappe.Train(records, labels, frappe.Options{Features: frappe.LiteFeatures()})
	if err != nil {
		logger.Error("training", "err", err)
		os.Exit(1)
	}
	f, err := os.Create(*modelPath)
	if err != nil {
		logger.Error("creating model file", "path", *modelPath, "err", err)
		os.Exit(1)
	}
	if err := clf.Save(f); err != nil {
		logger.Error("writing model", "path", *modelPath, "err", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		logger.Error("closing model file", "path", *modelPath, "err", err)
		os.Exit(1)
	}
	if *registryDir != "" {
		reg, err := frappe.OpenModelRegistry(*registryDir)
		if err != nil {
			logger.Error("opening model registry", "dir", *registryDir, "err", err)
			os.Exit(1)
		}
		m, err := frappe.PublishClassifier(reg, clf, frappe.ModelManifest{
			TrainingFingerprint: frappe.TrainingFingerprint(records, labels),
			TrainedRecords:      len(records),
			Notes:               "initial frappeserve model",
		})
		if err != nil {
			logger.Error("publishing model", "dir", *registryDir, "err", err)
			os.Exit(1)
		}
		logger.Info("model published", "registry", *registryDir, "model", m.ModelID(),
			"feature_mode", m.FeatureMode)
	}

	var faults *frappe.FaultSpec
	if *faultErrorRate > 0 || *faultHangRate > 0 || *faultLatency > 0 {
		faults = &frappe.FaultSpec{
			Seed: *faultSeed,
			Default: frappe.ServiceFaults{
				ErrorRate: *faultErrorRate,
				HangRate:  *faultHangRate,
				Latency:   *faultLatency,
			},
		}
		logger.Info("fault injection enabled",
			"error_rate", *faultErrorRate, "hang_rate", *faultHangRate,
			"latency", *faultLatency, "fault_seed", *faultSeed)
	}
	st, err := frappe.StartServicesWithFaults(w, faults)
	if err != nil {
		logger.Error("starting services", "err", err)
		os.Exit(1)
	}
	defer st.Close()

	if *debugAddr != "" {
		ds, err := telemetry.StartDebugServer(*debugAddr, st.Telemetry)
		if err != nil {
			logger.Error("starting debug server", "addr", *debugAddr, "err", err)
			os.Exit(1)
		}
		defer ds.Close()
		fmt.Printf("debug/metrics: http://%s/metrics (pprof at /debug/pprof/)\n", ds.Addr)
		logger.Info("debug server listening", "addr", ds.Addr)
	}

	fmt.Printf("model written to %s\n", *modelPath)
	fmt.Printf("graph API:    %s\n", st.GraphURL)
	fmt.Printf("WOT:          %s\n", st.WOTURL)
	fmt.Printf("bit.ly:       %s\n", st.BitlyURL)
	fmt.Printf("social bakers:%s\n", st.SocialBakersURL)
	fmt.Printf("redirector:   %s\n", st.RedirectorURL)

	// Offer one live app of each class to try.
	var benign, malicious string
	for _, id := range w.BenignIDs {
		if _, err := w.Platform.Lookup(id); err == nil {
			benign = id
			break
		}
	}
	for _, id := range w.MaliciousIDs {
		if _, err := w.Platform.Lookup(id); err == nil {
			malicious = id
			break
		}
	}
	fmt.Printf("\ntry:\n  frappe -graph %s -wot %s -model %s %s %s\n",
		st.GraphURL, st.WOTURL, *modelPath, benign, malicious)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	<-ctx.Done()
	logger.Info("shutting down")
}
