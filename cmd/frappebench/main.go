// Command frappebench regenerates every table and figure of the paper's
// evaluation section from a synthetic world and prints them in the paper's
// shape, with the original headline numbers cited inline for comparison.
//
// Usage:
//
//	frappebench [-scale 0.15] [-seed 20121210] [-quick]
//
// -quick skips the classifier cross-validation experiments (the slowest
// part) and prints only the measurement and forensics results.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"frappe/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("frappebench: ")
	scale := flag.Float64("scale", experiments.DefaultScale,
		"world scale (1.0 = the paper's 111K-app corpus)")
	seed := flag.Int64("seed", 0, "world seed (0 = paper-calibrated default)")
	quick := flag.Bool("quick", false, "skip the classifier experiments")
	dotPath := flag.String("dot", "", "write the Fig. 1 snapshot component as Graphviz DOT to this file")
	flag.Parse()

	start := time.Now()
	fmt.Printf("Generating synthetic world at scale %.2f ...\n", *scale)
	r, err := experiments.New(*scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("World ready in %v: %d apps, %d monitored users, %d posts streamed.\n\n",
		time.Since(start).Round(time.Millisecond),
		r.World.Platform.NumApps(), r.World.Platform.Users(), r.World.TotalStreamPosts)

	section := func(s string) { fmt.Println(s) }

	// Measurement study (§2-§4).
	section(r.Table1().Render())
	section(experiments.RenderTable2(r.Table2()))
	section(r.Table3().Render())
	section(experiments.Table4())
	section(r.Prevalence().Render())
	section(r.Fig3().Render())
	fig4 := r.Fig4()
	section(fig4.Median.Render() + fig4.Max.Render())
	section(experiments.RenderFig5(r.Fig5()))
	section(experiments.RenderFig6(r.Fig6()))
	section(r.Fig7().Render())
	section(r.Fig8().Render())
	section(r.Fig9().Render())
	section(experiments.RenderFig10(r.Fig10()))
	section(r.Fig11().Render())
	section(r.Fig12().Render())

	// Classification (§5).
	if !*quick {
		t5, err := r.Table5()
		if err != nil {
			log.Fatal(err)
		}
		section(experiments.RenderTable5(t5))
		t6, err := r.Table6()
		if err != nil {
			log.Fatal(err)
		}
		section(experiments.RenderTable6(t6))
		head, err := r.FRAppE()
		if err != nil {
			log.Fatal(err)
		}
		section(head.Render())
		t8, err := r.Table8()
		if err != nil {
			log.Fatal(err)
		}
		section(t8.Render())
		robust, err := r.Robust()
		if err != nil {
			log.Fatal(err)
		}
		section(robust.Render())
		kernels, err := r.AblationKernels()
		if err != nil {
			log.Fatal(err)
		}
		section(experiments.RenderKernels(kernels))
		noise, err := r.AblationLabelNoise()
		if err != nil {
			log.Fatal(err)
		}
		section(experiments.RenderNoise(noise))
		gs, err := r.AblationGridSearch()
		if err != nil {
			log.Fatal(err)
		}
		section(gs.Render())
		lm, err := r.AblationLearnedMPK()
		if err != nil {
			log.Fatal(err)
		}
		section(lm.Render())
		section(r.Countermeasures().Render())
	}

	// Ecosystem forensics (§6).
	section(r.Fig1().Render())
	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := r.WriteFig1DOT(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Fig 1 snapshot written to %s (render with: dot -Tpng %s)\n\n", *dotPath, *dotPath)
	}
	section(r.Indirection().Render())
	section(r.Fig14().Render())
	section(r.Fig15().Render())
	section(r.Fig16().Render())
	section(experiments.RenderTable9(r.Table9()))

	fmt.Fprintf(os.Stderr, "total runtime: %v\n", time.Since(start).Round(time.Millisecond))
}
