// Command frappebench regenerates every table and figure of the paper's
// evaluation section from a synthetic world and prints them in the paper's
// shape, with the original headline numbers cited inline for comparison.
//
// Usage:
//
//	frappebench [-scale 0.15] [-seed 20121210] [-quick] [-bench-json FILE]
//	            [-wal-dir DIR] [-wal-replay]
//	frappebench -serve [-serve-clients 8] [-serve-duration 10s]
//	            [-serve-apps 32] [-serve-verdict-ttl 5s] [-tracing on|off]
//	            [-serve-compile off|exact|rff] [-serve-variants]
//	            [-serve-cluster N] [-bench-json FILE]
//	frappebench -serve-addr http://127.0.0.1:8400 [-serve-clients 8]
//	            [-serve-duration 10s] [-serve-apps 32] [-bench-json FILE]
//
// -quick skips the classifier cross-validation experiments (the slowest
// part) and prints only the measurement and forensics results.
//
// The experiment suite runs on the internal/lab DAG engine by default:
// stages execute dependency-ordered with independent branches in parallel,
// and artifacts are cached content-addressed under -lab-store (a fresh
// temp directory per run unless set, so caching across invocations is
// opt-in). -no-cache runs the original monolithic sequential path instead;
// both paths render the same sections through the same code, so their
// reports are byte-identical. -report tees the rendered tables/figures to
// a file for exactly that comparison.
//
// -serve switches to the closed-loop serving benchmark: a watchdog is
// wired against an in-process loopback stack and hammered with
// -serve-clients concurrent /check loops for -serve-duration, reporting
// verdicts/sec, p50/p95/p99 latency and the verdict-cache hit rate.
// -tracing off disables request tracing for the run (isolating its cost),
// -serve-compile serves through a compiled inference artifact, and
// -serve-variants appends uncached, untraced exact-vs-RFF passes so one
// run records the full inference-path comparison. -serve-cluster N
// appends a pass driving N replicas behind the internal/cluster front
// door — the 1-vs-N serving comparison in one run. -serve-addr drives an
// external endpoint (a running watchdogd or frappelb) instead; the app
// pool still comes from the locally generated world.
//
// -bench-json writes per-stage wall-clock timings (world generation,
// dataset build, classifier training, cross-validation) read back from the
// process telemetry registry, plus a full metrics snapshot, so successive
// BENCH_*.json files capture a perf trajectory across PRs. In engine mode
// it additionally runs a second, fully cached pass over the same store and
// records a "lab" section: per-stage cold/cached wall times and cache
// hit/miss counts.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"strings"
	"time"

	"frappe/internal/experiments"
	"frappe/internal/lab"
	"frappe/internal/mypagekeeper"
	"frappe/internal/telemetry"
	"frappe/internal/wal"
)

// benchDoc is the -bench-json document shape.
type benchDoc struct {
	Scale float64 `json:"scale"`
	Seed  int64   `json:"seed"`
	Quick bool    `json:"quick"`
	// Workers is the GOMAXPROCS the run used; the parallel engine keeps
	// results byte-identical across worker counts, so BENCH files differing
	// only here are directly comparable.
	Workers int `json:"workers"`
	// StagesSeconds holds per-stage wall clock, read from the telemetry
	// registry: generate and build_datasets are last-run gauges; train and
	// cross_validate are cumulative histogram sums across every Train /
	// CrossValidate call the experiments made.
	StagesSeconds map[string]float64 `json:"stages_seconds"`
	TrainRuns     uint64             `json:"train_runs"`
	CrossvalRuns  uint64             `json:"crossval_runs"`
	TotalSeconds  float64            `json:"total_seconds"`
	// Metrics is the full registry snapshot keyed name{labels}; histograms
	// appear as {count, sum}.
	Metrics interface{} `json:"metrics"`
	// Serve carries the -serve closed-loop benchmark results; nil for the
	// experiment-suite mode.
	Serve *serveResult `json:"serve,omitempty"`
	// Lab carries the DAG engine's cold-vs-cached comparison; nil for the
	// -no-cache and -serve modes.
	Lab *labSection `json:"lab,omitempty"`
}

// labPass summarises one engine pass over the experiment DAG.
type labPass struct {
	Seconds float64 `json:"seconds"`
	Hits    int     `json:"hits"`
	Misses  int     `json:"misses"`
	// StageSeconds holds wall clock per executed stage; cache hits are
	// absent (they cost no stage work).
	StageSeconds map[string]float64 `json:"stage_seconds"`
	// StageStatus is hit/ran per stage.
	StageStatus map[string]string `json:"stage_status"`
}

// labSection is the -bench-json "lab" block: the cold pass that produced
// the report and a second, fully cached pass over the same store.
type labSection struct {
	Store   string  `json:"store"`
	Cold    labPass `json:"cold"`
	Cached  labPass `json:"cached"`
	Speedup float64 `json:"speedup"`
}

func labPassFrom(res *lab.Result) labPass {
	p := labPass{
		Seconds:      res.ElapsedSeconds,
		Hits:         res.Hits,
		Misses:       res.Misses,
		StageSeconds: map[string]float64{},
		StageStatus:  map[string]string{},
	}
	for name, rep := range res.Stages {
		p.StageStatus[name] = string(rep.Status)
		if rep.Status == lab.StatusRan {
			p.StageSeconds[name] = rep.Seconds
		}
	}
	return p
}

func writeBenchJSON(path string, scale float64, seed int64, quick bool, total time.Duration, serve *serveResult, labSec *labSection) error {
	reg := telemetry.Default()
	trainSum, trainRuns := reg.HistogramSum("frappe_train_duration_seconds")
	cvSum, cvRuns := reg.HistogramSum("frappe_crossval_duration_seconds")
	// Build() spans the whole dataset assembly under the "total" gauge; the
	// DAG path runs Select and CrawlSample as separate stages, so fall back
	// to summing the sub-stage gauges when "total" was never set.
	buildDatasets := reg.GaugeValue("frappe_dataset_stage_seconds", "total")
	if buildDatasets == 0 {
		for _, sub := range []string{"flag", "whitelist", "select_benign", "crawl"} {
			buildDatasets += reg.GaugeValue("frappe_dataset_stage_seconds", sub)
		}
	}
	doc := benchDoc{
		Serve:   serve,
		Lab:     labSec,
		Scale:   scale,
		Seed:    seed,
		Quick:   quick,
		Workers: runtime.GOMAXPROCS(0),
		StagesSeconds: map[string]float64{
			"generate":       reg.GaugeValue("frappe_synth_stage_seconds", "total"),
			"build_datasets": buildDatasets,
			// The ingest stage is the monitor-bound slice of generate:
			// posts and manual_posts stream through the sharded monitor's
			// queues, ingest_drain is the queue tail after the producer
			// finishes (see internal/mypagekeeper).
			"ingest_posts":        reg.GaugeValue("frappe_synth_stage_seconds", "posts"),
			"ingest_manual_posts": reg.GaugeValue("frappe_synth_stage_seconds", "manual_posts"),
			"ingest_drain":        reg.GaugeValue("frappe_synth_stage_seconds", "ingest_drain"),
			"ingest_total": reg.GaugeValue("frappe_synth_stage_seconds", "posts") +
				reg.GaugeValue("frappe_synth_stage_seconds", "manual_posts") +
				reg.GaugeValue("frappe_synth_stage_seconds", "ingest_drain"),
			"train":          trainSum,
			"cross_validate": cvSum,
		},
		TrainRuns:    trainRuns,
		CrossvalRuns: cvRuns,
		TotalSeconds: total.Seconds(),
		Metrics:      reg.ExpvarFunc()(),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	scale := flag.Float64("scale", experiments.DefaultScale,
		"world scale (1.0 = the paper's 111K-app corpus)")
	seed := flag.Int64("seed", 0, "world seed (0 = paper-calibrated default)")
	quick := flag.Bool("quick", false, "skip the classifier experiments")
	workersFlag := flag.Int("workers", 0, "cap worker parallelism via GOMAXPROCS (0 = all cores); results are identical for any value")
	dotPath := flag.String("dot", "", "write the Fig. 1 snapshot component as Graphviz DOT to this file (implies -no-cache)")
	noCache := flag.Bool("no-cache", false, "run the monolithic sequential path instead of the DAG engine")
	labStore := flag.String("lab-store", "", "artifact store directory for the DAG engine (default: fresh temp dir, removed at exit)")
	reportPath := flag.String("report", "", "also write the rendered tables/figures to this file")
	benchJSON := flag.String("bench-json", "", "write per-stage timings and a metrics snapshot as JSON to this file")
	walDir := flag.String("wal-dir", "",
		"write a durable ingestion WAL under world generation to this directory; after the run, replay it back and report integrity + throughput")
	walReplay := flag.Bool("wal-replay", false,
		"resume from an existing WAL in -wal-dir: replay it into the monitor and regenerate only past the replayed prefix")
	serveMode := flag.Bool("serve", false, "run the closed-loop serving benchmark instead of the experiment suite")
	serveClients := flag.Int("serve-clients", 8, "closed-loop client count for -serve")
	serveDuration := flag.Duration("serve-duration", 10*time.Second, "measurement window for -serve")
	serveApps := flag.Int("serve-apps", 32, "distinct live app IDs rotated through by -serve clients")
	serveTTL := flag.Duration("serve-verdict-ttl", 5*time.Second, "watchdog verdict-cache TTL for -serve (0 = cache off)")
	tracingFlag := flag.String("tracing", "on", "request tracing for -serve: on or off")
	serveCompile := flag.String("serve-compile", "off", "serve through a compiled artifact: off, exact or rff (-serve only)")
	serveVariants := flag.Bool("serve-variants", false,
		"after the primary -serve pass, run uncached/untraced exact-vs-RFF variant passes")
	serveAddr := flag.String("serve-addr", "",
		"drive this external endpoint (a running watchdogd or frappelb) instead of an in-process server; the app pool comes from the locally generated world, so the endpoint must serve the same -scale/-seed world")
	serveCluster := flag.Int("serve-cluster", 0,
		"after the primary -serve pass, drive N in-process replicas behind the cluster front door for a 1-vs-N comparison (0 = off)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logJSONFlag := flag.Bool("log-json", false, "log as JSON instead of text")
	flag.Parse()

	logger := telemetry.SetupProcessLogger(telemetry.LogConfig{
		Component: "frappebench", Level: *logLevel, JSON: *logJSONFlag,
	})
	if *workersFlag > 0 {
		runtime.GOMAXPROCS(*workersFlag)
	}

	if *tracingFlag != "on" && *tracingFlag != "off" {
		fmt.Fprintf(os.Stderr, "unknown -tracing %q (want on or off)\n", *tracingFlag)
		os.Exit(1)
	}

	if *serveMode || *serveAddr != "" {
		start := time.Now()
		scfg := serveConfig{
			scale:    *scale,
			seed:     *seed,
			clients:  *serveClients,
			duration: *serveDuration,
			appPool:  *serveApps,
			ttl:      *serveTTL,
			tracing:  *tracingFlag == "on",
			compile:  *serveCompile,
			variants: *serveVariants,
			addr:     *serveAddr,
			cluster:  *serveCluster,
		}
		var (
			res *serveResult
			err error
		)
		if scfg.addr != "" {
			res, err = runServeExternal(logger, scfg)
		} else {
			res, err = runServe(logger, scfg)
		}
		if err != nil {
			fatal(logger, err)
		}
		if *benchJSON != "" {
			if err := writeBenchJSON(*benchJSON, *scale, *seed, false, time.Since(start), res, nil); err != nil {
				fatal(logger, err)
			}
			fmt.Fprintf(os.Stderr, "serving benchmark written to %s\n", *benchJSON)
		}
		return
	}

	if *walReplay && *walDir == "" {
		fmt.Fprintln(os.Stderr, "-wal-replay requires -wal-dir")
		os.Exit(1)
	}

	ctx := context.Background()
	opts := experiments.PipelineOptions{Scale: *scale, Seed: *seed, Quick: *quick,
		WALDir: *walDir, WALResume: *walReplay}
	if *dotPath != "" && !*noCache {
		fmt.Fprintln(os.Stderr, "-dot needs the live world; running the monolithic -no-cache path")
		*noCache = true
	}

	start := time.Now()
	var report string
	var labSec *labSection
	if *noCache {
		report = runMonolithic(ctx, logger, opts, *dotPath)
	} else {
		report, labSec = runEngine(ctx, logger, opts, *labStore, *benchJSON != "")
	}
	total := time.Since(start)

	if *reportPath != "" {
		if err := os.WriteFile(*reportPath, []byte(report), 0o644); err != nil {
			fatal(logger, err)
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", *reportPath)
	}
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *scale, opts.WorldSeed(), *quick, total, nil, labSec); err != nil {
			fatal(logger, err)
		}
		fmt.Fprintf(os.Stderr, "stage timings written to %s\n", *benchJSON)
	}
	if *walDir != "" {
		verifyWAL(logger, *walDir)
	}
	fmt.Fprintf(os.Stderr, "total runtime: %v\n", total.Round(time.Millisecond))
}

// verifyWAL replays the run's ingestion WAL end to end into a throwaway
// monitor: every record must decode and apply (an integrity pass over the
// full log), and the pass doubles as a replay-throughput measurement.
func verifyWAL(logger *slog.Logger, dir string) {
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		fatal(logger, fmt.Errorf("reopening ingestion WAL: %w", err))
	}
	defer l.Close()
	start := time.Now()
	stats, err := mypagekeeper.Replay(
		mypagekeeper.New(mypagekeeper.DefaultClassifierConfig()), l, 0, nil)
	if err != nil {
		fatal(logger, fmt.Errorf("WAL replay verification: %w", err))
	}
	elapsed := time.Since(start)
	rate := float64(stats.Records) / elapsed.Seconds()
	consumers, err := l.Consumers()
	if err != nil {
		fatal(logger, fmt.Errorf("listing WAL consumers: %w", err))
	}
	fmt.Fprintf(os.Stderr,
		"wal: %d records replayed clean in %v (%.0f records/sec; %d posts, %d blacklists) consumers=%v\n",
		stats.Records, elapsed.Round(time.Millisecond), rate,
		stats.Posts, stats.Blacklists, consumers)
}

// runMonolithic is the original sequential path: build the world and the
// datasets, then render every section in order. Kept as the benchmarking
// and parity baseline for the DAG engine.
func runMonolithic(ctx context.Context, logger *slog.Logger, opts experiments.PipelineOptions, dotPath string) string {
	start := time.Now()
	scale := opts.Scale
	if scale == 0 {
		scale = experiments.DefaultScale
	}
	fmt.Printf("Generating synthetic world at scale %.2f ...\n", scale)
	r, err := experiments.NewFromOptions(ctx, opts)
	if err != nil {
		fatal(logger, err)
	}
	fmt.Printf("World ready in %v: %d apps, %d monitored users, %d posts streamed.\n\n",
		time.Since(start).Round(time.Millisecond),
		r.World.Platform.NumApps(), r.World.Platform.Users(), r.World.TotalStreamPosts)

	var report strings.Builder
	for _, sec := range experiments.Sections(opts) {
		if opts.Quick && !sec.InQuick {
			continue
		}
		out, err := sec.Render(ctx, r)
		if err != nil {
			fatal(logger, fmt.Errorf("section %s: %w", sec.Name, err))
		}
		fmt.Println(out)
		report.WriteString(out)
		report.WriteByte('\n')
		if sec.Name == "fig1" && dotPath != "" {
			writeDOT(logger, r, dotPath)
		}
	}
	return report.String()
}

// runEngine runs the experiment DAG on the lab engine. With benchLab set it
// runs a second, fully cached pass over the same store and returns the
// cold-vs-cached comparison for the -bench-json lab section.
func runEngine(ctx context.Context, logger *slog.Logger, opts experiments.PipelineOptions, storeDir string, benchLab bool) (string, *labSection) {
	if storeDir == "" {
		tmp, err := os.MkdirTemp("", "frappelab-*")
		if err != nil {
			fatal(logger, err)
		}
		defer os.RemoveAll(tmp)
		storeDir = tmp
	}
	store, err := lab.OpenStore(storeDir)
	if err != nil {
		fatal(logger, err)
	}
	run := func() *lab.Result {
		res, err := lab.Run(ctx, experiments.Pipeline(opts), lab.Options{Store: store, Logger: logger})
		if err != nil {
			fatal(logger, err)
		}
		return res
	}
	res := run()
	report, ok := res.Artifact("report")
	if !ok {
		fatal(logger, fmt.Errorf("engine run produced no report artifact"))
	}
	os.Stdout.Write(report)
	fmt.Fprintf(os.Stderr, "lab: %d stages — %d hits, %d misses in %v (store %s)\n",
		len(res.Stages), res.Hits, res.Misses, res.Elapsed.Round(time.Millisecond), storeDir)

	if !benchLab {
		return string(report), nil
	}
	cold := labPassFrom(res)
	cachedRes := run()
	cached := labPassFrom(cachedRes)
	sec := &labSection{Store: storeDir, Cold: cold, Cached: cached}
	if cached.Seconds > 0 {
		sec.Speedup = cold.Seconds / cached.Seconds
	}
	fmt.Fprintf(os.Stderr, "lab cached pass: %d hits, %d misses in %v (%.1fx)\n",
		cachedRes.Hits, cachedRes.Misses, cachedRes.Elapsed.Round(time.Millisecond), sec.Speedup)
	return string(report), sec
}

func writeDOT(logger *slog.Logger, r *experiments.Runner, dotPath string) {
	f, err := os.Create(dotPath)
	if err != nil {
		fatal(logger, err)
	}
	if err := r.WriteFig1DOT(f); err != nil {
		fatal(logger, err)
	}
	if err := f.Close(); err != nil {
		fatal(logger, err)
	}
	fmt.Printf("Fig 1 snapshot written to %s (render with: dot -Tpng %s)\n\n", dotPath, dotPath)
}

func fatal(logger *slog.Logger, err error) {
	logger.Error("frappebench failed", "err", err)
	os.Exit(1)
}
