// Command frappebench regenerates every table and figure of the paper's
// evaluation section from a synthetic world and prints them in the paper's
// shape, with the original headline numbers cited inline for comparison.
//
// Usage:
//
//	frappebench [-scale 0.15] [-seed 20121210] [-quick] [-bench-json FILE]
//	frappebench -serve [-serve-clients 8] [-serve-duration 10s]
//	            [-serve-apps 32] [-serve-verdict-ttl 5s] [-tracing on|off]
//	            [-serve-compile off|exact|rff] [-serve-variants]
//	            [-bench-json FILE]
//
// -quick skips the classifier cross-validation experiments (the slowest
// part) and prints only the measurement and forensics results.
//
// -serve switches to the closed-loop serving benchmark: a watchdog is
// wired against an in-process loopback stack and hammered with
// -serve-clients concurrent /check loops for -serve-duration, reporting
// verdicts/sec, p50/p95/p99 latency and the verdict-cache hit rate.
// -tracing off disables request tracing for the run (isolating its cost),
// -serve-compile serves through a compiled inference artifact, and
// -serve-variants appends uncached, untraced exact-vs-RFF passes so one
// run records the full inference-path comparison.
//
// -bench-json writes per-stage wall-clock timings (world generation,
// dataset build, classifier training, cross-validation) read back from the
// process telemetry registry, plus a full metrics snapshot, so successive
// BENCH_*.json files capture a perf trajectory across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"time"

	"frappe/internal/experiments"
	"frappe/internal/telemetry"
)

// benchDoc is the -bench-json document shape.
type benchDoc struct {
	Scale float64 `json:"scale"`
	Seed  int64   `json:"seed"`
	Quick bool    `json:"quick"`
	// Workers is the GOMAXPROCS the run used; the parallel engine keeps
	// results byte-identical across worker counts, so BENCH files differing
	// only here are directly comparable.
	Workers int `json:"workers"`
	// StagesSeconds holds per-stage wall clock, read from the telemetry
	// registry: generate and build_datasets are last-run gauges; train and
	// cross_validate are cumulative histogram sums across every Train /
	// CrossValidate call the experiments made.
	StagesSeconds map[string]float64 `json:"stages_seconds"`
	TrainRuns     uint64             `json:"train_runs"`
	CrossvalRuns  uint64             `json:"crossval_runs"`
	TotalSeconds  float64            `json:"total_seconds"`
	// Metrics is the full registry snapshot keyed name{labels}; histograms
	// appear as {count, sum}.
	Metrics interface{} `json:"metrics"`
	// Serve carries the -serve closed-loop benchmark results; nil for the
	// experiment-suite mode.
	Serve *serveResult `json:"serve,omitempty"`
}

func writeBenchJSON(path string, scale float64, seed int64, quick bool, total time.Duration, serve *serveResult) error {
	reg := telemetry.Default()
	trainSum, trainRuns := reg.HistogramSum("frappe_train_duration_seconds")
	cvSum, cvRuns := reg.HistogramSum("frappe_crossval_duration_seconds")
	doc := benchDoc{
		Serve:   serve,
		Scale:   scale,
		Seed:    seed,
		Quick:   quick,
		Workers: runtime.GOMAXPROCS(0),
		StagesSeconds: map[string]float64{
			"generate":       reg.GaugeValue("frappe_synth_stage_seconds", "total"),
			"build_datasets": reg.GaugeValue("frappe_dataset_stage_seconds", "total"),
			// The ingest stage is the monitor-bound slice of generate:
			// posts and manual_posts stream through the sharded monitor's
			// queues, ingest_drain is the queue tail after the producer
			// finishes (see internal/mypagekeeper).
			"ingest_posts":        reg.GaugeValue("frappe_synth_stage_seconds", "posts"),
			"ingest_manual_posts": reg.GaugeValue("frappe_synth_stage_seconds", "manual_posts"),
			"ingest_drain":        reg.GaugeValue("frappe_synth_stage_seconds", "ingest_drain"),
			"ingest_total": reg.GaugeValue("frappe_synth_stage_seconds", "posts") +
				reg.GaugeValue("frappe_synth_stage_seconds", "manual_posts") +
				reg.GaugeValue("frappe_synth_stage_seconds", "ingest_drain"),
			"train":          trainSum,
			"cross_validate": cvSum,
		},
		TrainRuns:    trainRuns,
		CrossvalRuns: cvRuns,
		TotalSeconds: total.Seconds(),
		Metrics:      reg.ExpvarFunc()(),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	scale := flag.Float64("scale", experiments.DefaultScale,
		"world scale (1.0 = the paper's 111K-app corpus)")
	seed := flag.Int64("seed", 0, "world seed (0 = paper-calibrated default)")
	quick := flag.Bool("quick", false, "skip the classifier experiments")
	workersFlag := flag.Int("workers", 0, "cap worker parallelism via GOMAXPROCS (0 = all cores); results are identical for any value")
	dotPath := flag.String("dot", "", "write the Fig. 1 snapshot component as Graphviz DOT to this file")
	benchJSON := flag.String("bench-json", "", "write per-stage timings and a metrics snapshot as JSON to this file")
	serveMode := flag.Bool("serve", false, "run the closed-loop serving benchmark instead of the experiment suite")
	serveClients := flag.Int("serve-clients", 8, "closed-loop client count for -serve")
	serveDuration := flag.Duration("serve-duration", 10*time.Second, "measurement window for -serve")
	serveApps := flag.Int("serve-apps", 32, "distinct live app IDs rotated through by -serve clients")
	serveTTL := flag.Duration("serve-verdict-ttl", 5*time.Second, "watchdog verdict-cache TTL for -serve (0 = cache off)")
	tracingFlag := flag.String("tracing", "on", "request tracing for -serve: on or off")
	serveCompile := flag.String("serve-compile", "off", "serve through a compiled artifact: off, exact or rff (-serve only)")
	serveVariants := flag.Bool("serve-variants", false,
		"after the primary -serve pass, run uncached/untraced exact-vs-RFF variant passes")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logJSONFlag := flag.Bool("log-json", false, "log as JSON instead of text")
	flag.Parse()

	logger := telemetry.SetupProcessLogger(telemetry.LogConfig{
		Component: "frappebench", Level: *logLevel, JSON: *logJSONFlag,
	})
	if *workersFlag > 0 {
		runtime.GOMAXPROCS(*workersFlag)
	}

	if *tracingFlag != "on" && *tracingFlag != "off" {
		fmt.Fprintf(os.Stderr, "unknown -tracing %q (want on or off)\n", *tracingFlag)
		os.Exit(1)
	}

	if *serveMode {
		start := time.Now()
		res, err := runServe(logger, serveConfig{
			scale:    *scale,
			seed:     *seed,
			clients:  *serveClients,
			duration: *serveDuration,
			appPool:  *serveApps,
			ttl:      *serveTTL,
			tracing:  *tracingFlag == "on",
			compile:  *serveCompile,
			variants: *serveVariants,
		})
		if err != nil {
			fatal(logger, err)
		}
		if *benchJSON != "" {
			if err := writeBenchJSON(*benchJSON, *scale, *seed, false, time.Since(start), res); err != nil {
				fatal(logger, err)
			}
			fmt.Fprintf(os.Stderr, "serving benchmark written to %s\n", *benchJSON)
		}
		return
	}

	start := time.Now()
	fmt.Printf("Generating synthetic world at scale %.2f ...\n", *scale)
	r, err := experiments.New(*scale, *seed)
	if err != nil {
		logger.Error("building experiment world", "err", err)
		os.Exit(1)
	}
	fmt.Printf("World ready in %v: %d apps, %d monitored users, %d posts streamed.\n\n",
		time.Since(start).Round(time.Millisecond),
		r.World.Platform.NumApps(), r.World.Platform.Users(), r.World.TotalStreamPosts)

	section := func(s string) { fmt.Println(s) }

	// Measurement study (§2-§4).
	section(r.Table1().Render())
	section(experiments.RenderTable2(r.Table2()))
	section(r.Table3().Render())
	section(experiments.Table4())
	section(r.Prevalence().Render())
	section(r.Fig3().Render())
	fig4 := r.Fig4()
	section(fig4.Median.Render() + fig4.Max.Render())
	section(experiments.RenderFig5(r.Fig5()))
	section(experiments.RenderFig6(r.Fig6()))
	section(r.Fig7().Render())
	section(r.Fig8().Render())
	section(r.Fig9().Render())
	section(experiments.RenderFig10(r.Fig10()))
	section(r.Fig11().Render())
	section(r.Fig12().Render())

	// Classification (§5).
	if !*quick {
		t5, err := r.Table5()
		if err != nil {
			fatal(logger, err)
		}
		section(experiments.RenderTable5(t5))
		t6, err := r.Table6()
		if err != nil {
			fatal(logger, err)
		}
		section(experiments.RenderTable6(t6))
		head, err := r.FRAppE()
		if err != nil {
			fatal(logger, err)
		}
		section(head.Render())
		t8, err := r.Table8()
		if err != nil {
			fatal(logger, err)
		}
		section(t8.Render())
		robust, err := r.Robust()
		if err != nil {
			fatal(logger, err)
		}
		section(robust.Render())
		kernels, err := r.AblationKernels()
		if err != nil {
			fatal(logger, err)
		}
		section(experiments.RenderKernels(kernels))
		noise, err := r.AblationLabelNoise()
		if err != nil {
			fatal(logger, err)
		}
		section(experiments.RenderNoise(noise))
		gs, err := r.AblationGridSearch()
		if err != nil {
			fatal(logger, err)
		}
		section(gs.Render())
		lm, err := r.AblationLearnedMPK()
		if err != nil {
			fatal(logger, err)
		}
		section(lm.Render())
		section(r.Countermeasures().Render())
	}

	// Ecosystem forensics (§6).
	section(r.Fig1().Render())
	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			fatal(logger, err)
		}
		if err := r.WriteFig1DOT(f); err != nil {
			fatal(logger, err)
		}
		if err := f.Close(); err != nil {
			fatal(logger, err)
		}
		fmt.Printf("Fig 1 snapshot written to %s (render with: dot -Tpng %s)\n\n", *dotPath, *dotPath)
	}
	section(r.Indirection().Render())
	section(r.Fig14().Render())
	section(r.Fig15().Render())
	section(r.Fig16().Render())
	section(experiments.RenderTable9(r.Table9()))

	total := time.Since(start)
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *scale, r.Seed, *quick, total, nil); err != nil {
			fatal(logger, err)
		}
		fmt.Fprintf(os.Stderr, "stage timings written to %s\n", *benchJSON)
	}
	fmt.Fprintf(os.Stderr, "total runtime: %v\n", total.Round(time.Millisecond))
}

func fatal(logger *slog.Logger, err error) {
	logger.Error("frappebench failed", "err", err)
	os.Exit(1)
}
