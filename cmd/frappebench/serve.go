package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"frappe"
	"frappe/internal/cluster"
	"frappe/internal/stack"
	"frappe/internal/telemetry"
	"frappe/internal/tracing"
)

// The -serve mode benchmarks the watchdog's serving path end to end: it
// generates a world, trains a Lite classifier, starts the loopback
// service stack, mounts WatchdogHandler on a real listener, and drives it
// with N closed-loop HTTP clients rotating over a pool of live app IDs.
// Closed-loop means each client issues its next /check only after the
// previous one answers, so concurrency is exactly -serve-clients and the
// measured latency distribution is not coordinated-omission-biased by an
// open-loop arrival schedule.
//
// -serve-variants adds isolated passes over the same world and stack that
// strip the verdict cache and request tracing, comparing the exact
// kernel-expansion model against the compiled random-Fourier-features
// artifact on the pure uncached miss path — the inference-bound regime the
// compiled path exists for.

// serveResult is the serving-benchmark section of the -bench-json doc.
type serveResult struct {
	Clients        int     `json:"clients"`
	AppPool        int     `json:"app_pool"`
	VerdictTTLSecs float64 `json:"verdict_ttl_seconds"`
	// Tracing reports whether request tracing was enabled for the pass.
	Tracing bool `json:"tracing"`
	// Compile names the inference form that served the pass: "exact"
	// (kernel expansion), a compiled artifact ("rff(d=128,seed=2,float32)"),
	// or "external" when the pass drove a remote endpoint.
	Compile string `json:"compile"`
	// Replicas is the watchdog count behind the measured endpoint: 1 for
	// the in-process server, N for a cluster pass.
	Replicas     int     `json:"replicas,omitempty"`
	DurationSecs float64 `json:"duration_seconds"`
	Requests     uint64  `json:"requests"`
	// Verdicts counts conclusive answers: 200 classifications plus 404
	// deleted-app findings (a verdict in the paper's terms).
	Verdicts       uint64             `json:"verdicts"`
	Errors         uint64             `json:"errors"`
	VerdictsPerSec float64            `json:"verdicts_per_sec"`
	LatencyMS      map[string]float64 `json:"latency_ms"`
	// CacheHitRate is hits over all verdict-cache lookups (hit, miss,
	// expired, stale_model), read from the process telemetry registry.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// InferenceNSPerOp is the warm single-verdict classification cost
	// (pooled extraction + scaling + decision value) measured directly
	// against the pass's pinned inference form, outside the HTTP path —
	// the number the compiled artifact exists to shrink, isolated from
	// crawl and network noise.
	InferenceNSPerOp float64 `json:"inference_ns_per_op,omitempty"`
	// Variants holds the -serve-variants passes, keyed by variant name.
	Variants map[string]*serveResult `json:"variants,omitempty"`
}

type serveConfig struct {
	scale    float64
	seed     int64
	clients  int
	duration time.Duration
	appPool  int
	ttl      time.Duration
	tracing  bool
	compile  string // off, exact or rff
	variants bool
	// addr, when set, points the closed-loop clients at an external
	// endpoint (a running watchdogd or frappelb) instead of an in-process
	// server; the app pool still comes from the locally generated world,
	// so the endpoint must serve the same -scale/-seed world.
	addr string
	// cluster, when >= 2, appends a pass driving N in-process replicas
	// behind the internal/cluster front door — the 1-vs-N comparison.
	cluster int
}

// benchCompileTolerance gates the compiled artifact the benchmark serves:
// the RFF approximation may cost at most two points of holdout accuracy
// before the gate widens the map (or gives up).
const benchCompileTolerance = 0.02

// runServe executes the closed-loop serving benchmark and returns its
// result (for -bench-json) or an error. Zero verdicts is an error: a
// serving path that answers nothing conclusively is broken, and CI runs
// this mode as a smoke check.
func runServe(logger *slog.Logger, cfg serveConfig) (*serveResult, error) {
	fmt.Printf("Generating world at scale %.2f for serving benchmark ...\n", cfg.scale)
	wcfg := frappe.DefaultConfig(cfg.scale)
	if cfg.seed != 0 {
		wcfg.Seed = cfg.seed
	}
	w := frappe.GenerateWorld(wcfg)
	d, err := frappe.BuildDatasets(context.Background(), w)
	if err != nil {
		return nil, fmt.Errorf("building datasets: %w", err)
	}
	records, labels := frappe.LabeledSample(d)
	clf, err := frappe.Train(records, labels, frappe.Options{Features: frappe.LiteFeatures(), Seed: 2})
	if err != nil {
		return nil, fmt.Errorf("training classifier: %w", err)
	}

	st, err := frappe.StartServices(w)
	if err != nil {
		return nil, fmt.Errorf("starting service stack: %w", err)
	}
	defer st.Close()

	pool := livePool(w, cfg.appPool)
	if len(pool) == 0 {
		return nil, fmt.Errorf("no live apps in the generated world")
	}

	// compileFor pins the inference form a pass serves through. For RFF it
	// walks the latency dial the wrong-side-out: start at the default
	// (fastest) dimension and double until the parity gate accepts — the
	// benchmark then serves the smallest map that passed, exactly what a
	// deployment would pick.
	compileFor := func(mode string) (string, error) {
		clf.DropCompiled()
		if mode == "off" || mode == "exact-model" {
			return "exact", nil
		}
		cm, err := frappe.ParseCompileMode(mode)
		if err != nil {
			return "", fmt.Errorf("-serve-compile: %w", err)
		}
		opts := frappe.DefaultCompileOptions(cm)
		opts.Seed = 2
		for {
			parity, err := frappe.CompileClassifier(clf, records, labels, opts, benchCompileTolerance)
			if errors.Is(err, frappe.ErrCompileRefused) && cm == frappe.CompileRFF && opts.RFFDim < 1024 {
				logger.Info("compile gate refused; widening the Fourier map",
					"rff_dim", opts.RFFDim, "reason", err.Error())
				opts.RFFDim *= 2
				continue
			}
			if err != nil {
				return "", fmt.Errorf("compiling classifier (%s): %w", mode, err)
			}
			logger.Info("serving compiled artifact", "compiled", clf.Compiled().String(),
				"agreement", parity.AgreementRate, "max_drift", parity.MaxDecisionDrift)
			return clf.Compiled().String(), nil
		}
	}

	pass := func(label, mode string, ttl time.Duration, traceOn bool) (*serveResult, error) {
		compiled, err := compileFor(mode)
		if err != nil {
			return nil, err
		}
		wd, err := frappe.NewWatchdogWith(clf, frappe.WatchdogConfig{
			GraphURL:   st.GraphURL,
			WOTURL:     st.WOTURL,
			VerdictTTL: ttl,
		})
		if err != nil {
			return nil, fmt.Errorf("building watchdog: %w", err)
		}
		tracing.Default().SetEnabled(traceOn)
		infNS := measureInference(clf, records[0])
		res, err := drivePass(logger, label, wd, cfg.clients, cfg.duration, pool)
		if err != nil {
			return nil, err
		}
		res.VerdictTTLSecs = ttl.Seconds()
		res.Tracing = traceOn
		res.Compile = compiled
		res.InferenceNSPerOp = infNS
		fmt.Printf("  inference       %.0f ns/op (%s)\n", infNS, compiled)
		return res, nil
	}

	primary, err := pass("primary", cfg.compile, cfg.ttl, cfg.tracing)
	if err != nil {
		return nil, err
	}
	if cfg.cluster >= 2 {
		// The 1-vs-N comparison: the primary pass above is the single
		// in-process server; this pass puts cfg.cluster replicas of the
		// same classifier behind the consistent-hash front door.
		primary.Replicas = 1
		label := fmt.Sprintf("cluster_%d", cfg.cluster)
		res, err := serveClusterPass(logger, label, clf, st, cfg, pool, primary.Compile)
		if err != nil {
			return nil, fmt.Errorf("cluster pass: %w", err)
		}
		if primary.Variants == nil {
			primary.Variants = make(map[string]*serveResult)
		}
		primary.Variants[label] = res
	}
	if cfg.variants {
		// The variant passes isolate the uncached inference path: no
		// verdict cache, no tracing, exact vs compiled-RFF scoring.
		if primary.Variants == nil {
			primary.Variants = make(map[string]*serveResult)
		}
		for _, v := range []struct{ name, mode string }{
			{"exact_uncached_untraced", "off"},
			{"rff_uncached_untraced", "rff"},
		} {
			res, err := pass(v.name, v.mode, 0, false)
			if err != nil {
				return nil, fmt.Errorf("variant %s: %w", v.name, err)
			}
			primary.Variants[v.name] = res
		}
	}
	tracing.Default().SetEnabled(true)
	return primary, nil
}

// serveClusterPass drives n replicas of clf behind the internal/cluster
// front door: each replica is its own Watchdog (own verdict cache and
// singleflight, the partition the ring keeps hot), the LB routes and
// fails over exactly as cmd/frappelb does, and the closed-loop clients
// hammer the LB.
func serveClusterPass(logger *slog.Logger, label string, clf *frappe.Classifier, st *frappe.Stack, cfg serveConfig, pool []string, compiled string) (*serveResult, error) {
	n := cfg.cluster
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("w%d", i+1)
	}
	var buildErr error
	rs, err := stack.StartReplicas(ids, func(_ int, id string) http.Handler {
		wd, err := frappe.NewWatchdogWith(clf, frappe.WatchdogConfig{
			GraphURL:   st.GraphURL,
			WOTURL:     st.WOTURL,
			VerdictTTL: cfg.ttl,
		})
		if err != nil {
			buildErr = err
			return http.NotFoundHandler()
		}
		return frappe.NewWatchdogHandler(wd, frappe.HandlerConfig{
			Timeout:  10 * time.Second,
			MemberID: id,
		})
	})
	if err != nil {
		return nil, err
	}
	defer rs.Close()
	if buildErr != nil {
		return nil, fmt.Errorf("building replica watchdog: %w", buildErr)
	}

	members := make([]cluster.Member, n)
	for i := range members {
		members[i] = cluster.Member{ID: rs.ID(i), URL: rs.URL(i)}
	}
	c, err := cluster.New(cluster.Config{Members: members})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.Start(ctx)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("listening: %w", err)
	}
	srv := &http.Server{Handler: telemetry.Middleware(nil, "frappelb", c.Handler())}
	go srv.Serve(ln)
	defer srv.Close()

	res, err := driveEndpoint(logger, label, "http://"+ln.Addr().String(), cfg.clients, cfg.duration, pool, true)
	if err != nil {
		return nil, err
	}
	res.VerdictTTLSecs = cfg.ttl.Seconds()
	res.Tracing = cfg.tracing
	res.Compile = compiled
	res.Replicas = n
	return res, nil
}

// runServeExternal drives an already-running endpoint (a watchdogd or a
// frappelb front door) with the closed-loop client set. The app pool is
// derived from the locally generated world, so the endpoint must serve
// the same -scale/-seed world for the requests to mean anything.
func runServeExternal(logger *slog.Logger, cfg serveConfig) (*serveResult, error) {
	fmt.Printf("Generating world at scale %.2f for the external app pool ...\n", cfg.scale)
	wcfg := frappe.DefaultConfig(cfg.scale)
	if cfg.seed != 0 {
		wcfg.Seed = cfg.seed
	}
	w := frappe.GenerateWorld(wcfg)
	pool := livePool(w, cfg.appPool)
	if len(pool) == 0 {
		return nil, fmt.Errorf("no live apps in the generated world")
	}
	res, err := driveEndpoint(logger, "external", strings.TrimRight(cfg.addr, "/"),
		cfg.clients, cfg.duration, pool, false)
	if err != nil {
		return nil, err
	}
	res.Compile = "external"
	return res, nil
}

// measureInference times the warm single-verdict path against whatever
// inference form is pinned on clf: one warming call, then the median of
// several tight-loop samples (median, because a GC pause or scheduler
// preemption in one sample should not smear the number).
func measureInference(clf *frappe.Classifier, r frappe.AppRecord) float64 {
	if _, err := clf.Classify(r); err != nil {
		return 0
	}
	const samples, n = 7, 50_000
	perOp := make([]float64, samples)
	for s := range perOp {
		start := time.Now()
		for i := 0; i < n; i++ {
			clf.Classify(r)
		}
		perOp[s] = float64(time.Since(start).Nanoseconds()) / n
	}
	sort.Float64s(perOp)
	return perOp[samples/2]
}

// drivePass hammers one watchdog with the closed-loop client set and
// reports the measured pass.
func drivePass(logger *slog.Logger, label string, wd *frappe.Watchdog, clients int, duration time.Duration, pool []string) (*serveResult, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("listening: %w", err)
	}
	srv := &http.Server{Handler: frappe.WatchdogHandler(wd, 10*time.Second)}
	go srv.Serve(ln)
	defer srv.Close()
	return driveEndpoint(logger, label, "http://"+ln.Addr().String(), clients, duration, pool, true)
}

// driveEndpoint is the measurement core: closed-loop clients against any
// /check endpoint — in-process server, cluster front door, or an external
// URL. measureCache reads the process verdict-cache counters around the
// pass; turn it off when the endpoint lives in another process (its
// counters are not ours to read).
func driveEndpoint(logger *slog.Logger, label, base string, clients int, duration time.Duration, pool []string, measureCache bool) (*serveResult, error) {
	fmt.Printf("Serving pass %q: %d clients, %d-app pool, %v against %s ...\n",
		label, clients, len(pool), duration, base)

	reg := telemetry.Default()
	var cacheBefore, hitsBefore uint64
	if measureCache {
		cacheBefore = cacheLookups(reg)
		hitsBefore = reg.CounterValue("frappe_verdict_cache_total", "hit")
	}

	var requests, verdicts, errCount atomic.Uint64
	lats := make([][]time.Duration, clients)
	deadline := time.Now().Add(duration)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			// Each client starts at a different pool offset so the cache
			// sees interleaved, overlapping demand rather than lockstep.
			for i := c; time.Now().Before(deadline); i++ {
				id := pool[i%len(pool)]
				t0 := time.Now()
				resp, err := client.Get(base + "/check?app=" + url.QueryEscape(id))
				requests.Add(1)
				if err != nil {
					errCount.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lats[c] = append(lats[c], time.Since(t0))
				switch resp.StatusCode {
				case http.StatusOK, http.StatusNotFound:
					verdicts.Add(1)
				default:
					errCount.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if verdicts.Load() == 0 {
		return nil, fmt.Errorf("serving pass %q produced zero verdicts in %v (%d requests, %d errors)",
			label, elapsed.Round(time.Millisecond), requests.Load(), errCount.Load())
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := &serveResult{
		Clients:        clients,
		AppPool:        len(pool),
		DurationSecs:   elapsed.Seconds(),
		Requests:       requests.Load(),
		Verdicts:       verdicts.Load(),
		Errors:         errCount.Load(),
		VerdictsPerSec: float64(verdicts.Load()) / elapsed.Seconds(),
		LatencyMS: map[string]float64{
			"p50":  ms(percentile(all, 0.50)),
			"p95":  ms(percentile(all, 0.95)),
			"p99":  ms(percentile(all, 0.99)),
			"max":  ms(percentile(all, 1.0)),
			"mean": ms(mean(all)),
		},
	}
	if measureCache {
		if lookups := cacheLookups(reg) - cacheBefore; lookups > 0 {
			hits := reg.CounterValue("frappe_verdict_cache_total", "hit") - hitsBefore
			res.CacheHitRate = float64(hits) / float64(lookups)
		}
	}

	fmt.Printf(`
Serving pass %q (closed loop, %d clients, %v)
  verdicts/sec    %.1f  (%d verdicts / %d requests, %d errors)
  latency ms      p50 %.2f  p95 %.2f  p99 %.2f  max %.2f
  cache-hit rate  %.1f%%
`,
		label, res.Clients, elapsed.Round(time.Millisecond),
		res.VerdictsPerSec, res.Verdicts, res.Requests, res.Errors,
		res.LatencyMS["p50"], res.LatencyMS["p95"], res.LatencyMS["p99"], res.LatencyMS["max"],
		100*res.CacheHitRate)
	logger.Info("serving pass complete", "pass", label,
		"verdicts_per_sec", res.VerdictsPerSec, "p99_ms", res.LatencyMS["p99"],
		"cache_hit_rate", res.CacheHitRate)
	return res, nil
}

// livePool picks up to n live (not deleted) app IDs, alternating benign
// and malicious so both crawl shapes are represented.
func livePool(w *frappe.World, n int) []string {
	var pool []string
	half := (n + 1) / 2
	pick := func(ids []string, quota int) {
		for _, id := range ids {
			if quota == 0 {
				return
			}
			if _, err := w.Platform.Lookup(id); err == nil {
				pool = append(pool, id)
				quota--
			}
		}
	}
	pick(w.BenignIDs, half)
	pick(w.MaliciousIDs, n-len(pool))
	return pool
}

func cacheLookups(reg *telemetry.Registry) uint64 {
	var total uint64
	for _, result := range []string{"hit", "miss", "expired", "stale_model"} {
		total += reg.CounterValue("frappe_verdict_cache_total", result)
	}
	return total
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func mean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
