// Command frappelab regenerates the paper's tables and figures through the
// internal/lab DAG engine: dependency-ordered stages (generate → ingest →
// datasets → crawl → train → evaluations → report) with content-addressed
// artifact caching, parallel independent branches, and resumable runs.
//
// Usage:
//
//	frappelab [-scale 0.15] [-seed 20121210] [-quick] [-store .frappelab]
//	          [-workers N] [-out FILE] [-force] [-expect-all-hits] [-list]
//
// A first run computes everything and persists each stage's artifact under
// -store; a second run with unchanged inputs is pure cache hits and prints
// the identical report in a fraction of the time. Changing the seed, the
// scale, or one stage's config re-runs exactly the affected downstream
// cone. An interrupted run (crash, ctrl-C) resumes from its completed
// stages. The report is byte-identical to frappebench's monolithic
// -no-cache output — both render the same sections through the same code.
//
// -expect-all-hits exits non-zero if any stage missed the cache; CI uses
// it to assert that a repeated run is fully cached. -force re-runs every
// stage while still refreshing the store.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"frappe/internal/experiments"
	"frappe/internal/lab"
	"frappe/internal/telemetry"
)

func main() {
	scale := flag.Float64("scale", experiments.DefaultScale,
		"world scale (1.0 = the paper's 111K-app corpus)")
	seed := flag.Int64("seed", 0, "world seed (0 = paper-calibrated default)")
	quick := flag.Bool("quick", false, "skip the classifier experiments")
	storeDir := flag.String("store", ".frappelab", "artifact store directory")
	workers := flag.Int("workers", 0, "max concurrent stages (0 = GOMAXPROCS); results are identical for any value")
	outPath := flag.String("out", "", "write the report to this file instead of stdout")
	force := flag.Bool("force", false, "ignore cached artifacts (still refreshes the store)")
	expectAllHits := flag.Bool("expect-all-hits", false, "exit non-zero if any stage missed the cache")
	list := flag.Bool("list", false, "print the stage DAG and exit")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "log as JSON instead of text")
	flag.Parse()

	logger := telemetry.SetupProcessLogger(telemetry.LogConfig{
		Component: "frappelab", Level: *logLevel, JSON: *logJSON,
	})
	opts := experiments.PipelineOptions{Scale: *scale, Seed: *seed, Quick: *quick}
	stages := experiments.Pipeline(opts)

	if *list {
		for _, s := range stages {
			deps := ""
			if len(s.Deps) > 0 {
				deps = " <- " + strings.Join(s.Deps, ", ")
			}
			fmt.Printf("%s%s\n", s.Name, deps)
		}
		return
	}

	store, err := lab.OpenStore(*storeDir)
	if err != nil {
		logger.Error("opening store", "err", err)
		os.Exit(1)
	}

	// Ctrl-C cancels the run; completed stages have already persisted
	// their artifacts, so the next invocation resumes from them.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := lab.Run(ctx, stages, lab.Options{
		Store:   store,
		Workers: *workers,
		Logger:  logger,
		Force:   *force,
	})
	if err != nil {
		logger.Error("lab run failed", "err", err,
			"hits", res.Hits, "misses", res.Misses)
		fmt.Fprintln(os.Stderr, "completed stages are cached; re-run to resume")
		os.Exit(1)
	}

	report, ok := res.Artifact("report")
	if !ok {
		logger.Error("run produced no report artifact")
		os.Exit(1)
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, report, 0o644); err != nil {
			logger.Error("writing report", "err", err)
			os.Exit(1)
		}
	} else {
		os.Stdout.Write(report)
	}

	fmt.Fprintf(os.Stderr, "lab: %d stages — %d hits, %d misses, %d opened, %d materialized in %v (store %s)\n",
		len(res.Stages), res.Hits, res.Misses, res.Opens, res.Materializations,
		res.Elapsed.Round(time.Millisecond), *storeDir)
	if *expectAllHits && res.Misses > 0 {
		for name, rep := range res.Stages {
			if rep.Status != lab.StatusHit {
				fmt.Fprintf(os.Stderr, "  stage %s: %s\n", name, rep.Status)
			}
		}
		fmt.Fprintf(os.Stderr, "expected all cache hits, got %d misses\n", res.Misses)
		os.Exit(2)
	}
}
