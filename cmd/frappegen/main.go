// Command frappegen generates a synthetic world and dumps its observable
// corpus as JSON: one record per app with the crawlable profile, the
// MyPageKeeper aggregation view, and (optionally) the hidden ground truth.
//
// Usage:
//
//	frappegen [-scale 0.01] [-seed 20121210] [-truth] [-o corpus.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"os"

	"frappe/internal/datasets"
	"frappe/internal/synth"
	"frappe/internal/telemetry"
)

// appDump is one serialised app record.
type appDump struct {
	ID            string   `json:"id"`
	Name          string   `json:"name,omitempty"`
	Description   string   `json:"description,omitempty"`
	Company       string   `json:"company,omitempty"`
	Category      string   `json:"category,omitempty"`
	Permissions   []string `json:"permissions,omitempty"`
	RedirectURI   string   `json:"redirect_uri,omitempty"`
	ClientID      string   `json:"client_id,omitempty"`
	WOTScore      *int     `json:"wot_score,omitempty"`
	ProfilePosts  *int     `json:"profile_posts,omitempty"`
	Deleted       bool     `json:"deleted"`
	Posts         int      `json:"posts"`
	FlaggedPosts  int      `json:"flagged_posts"`
	ExternalLinks int      `json:"external_links"`

	// Hidden ground truth, emitted only with -truth.
	Malicious *bool `json:"malicious,omitempty"`
	HackerID  *int  `json:"hacker_id,omitempty"`
}

type dump struct {
	Scale     float64   `json:"scale"`
	Seed      int64     `json:"seed"`
	Users     int       `json:"users"`
	Months    int       `json:"months"`
	Apps      []appDump `json:"apps"`
	DSampleM  []string  `json:"d_sample_malicious"`
	DSampleB  []string  `json:"d_sample_benign"`
	Whitelist []string  `json:"whitelisted"`
}

func main() {
	scale := flag.Float64("scale", 0.01, "world scale (1.0 = paper scale)")
	seed := flag.Int64("seed", 0, "world seed (0 = default)")
	truth := flag.Bool("truth", false, "include hidden ground-truth labels")
	out := flag.String("o", "-", "output file (- = stdout)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "log as JSON instead of text")
	flag.Parse()

	logger := telemetry.SetupProcessLogger(telemetry.LogConfig{
		Component: "frappegen", Level: *logLevel, JSON: *logJSON,
	})

	cfg := synth.Default(*scale)
	if *seed != 0 {
		cfg.Seed = *seed
	}
	logger.Info("generating world", "scale", *scale, "seed", cfg.Seed)
	w := synth.Generate(cfg)
	b := &datasets.Builder{World: w}
	d, err := b.Build(context.Background())
	if err != nil {
		logger.Error("building datasets", "err", err)
		os.Exit(1)
	}

	doc := dump{
		Scale:     *scale,
		Seed:      cfg.Seed,
		Users:     w.Platform.Users(),
		Months:    cfg.Months,
		DSampleM:  d.Malicious,
		DSampleB:  d.Benign,
		Whitelist: d.Whitelisted,
	}
	for _, id := range d.DTotal {
		app, err := w.Platform.App(id)
		if err != nil {
			continue
		}
		as := d.Stats[id]
		rec := appDump{
			ID:            id,
			Name:          app.Name,
			Deleted:       app.Deleted,
			Posts:         as.Posts,
			FlaggedPosts:  as.FlaggedPosts,
			ExternalLinks: as.ExternalLinks,
		}
		if cr, ok := d.Crawl[id]; ok && cr.SummaryErr == nil {
			rec.Description = cr.Summary.Description
			rec.Company = cr.Summary.Company
			rec.Category = cr.Summary.Category
			if cr.InstallErr == nil {
				rec.Permissions = cr.Install.Permissions
				rec.RedirectURI = cr.Install.RedirectURI
				rec.ClientID = cr.Install.ClientID
				score := cr.WOTScore
				rec.WOTScore = &score
			}
			if cr.FeedErr == nil {
				n := len(cr.Feed)
				rec.ProfilePosts = &n
			}
		}
		if *truth {
			m := app.Truth.Malicious
			h := app.Truth.HackerID
			rec.Malicious = &m
			rec.HackerID = &h
		}
		doc.Apps = append(doc.Apps, rec)
	}

	var f *os.File
	if *out == "-" {
		f = os.Stdout
	} else {
		f, err = os.Create(*out)
		if err != nil {
			logger.Error("creating output file", "path", *out, "err", err)
			os.Exit(1)
		}
		defer f.Close()
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		logger.Error("encoding corpus", "err", err)
		os.Exit(1)
	}
}
