// Command frappetrain is the continuous-retraining driver of the model
// lifecycle: it snapshots the MyPageKeeper monitor's labeled view,
// retrains the classifier through the parallel cross-validation path, and
// publishes the candidate to a versioned model registry — but only when
// its shadow-evaluated holdout metrics do not regress versus the
// incumbent. Serving processes (watchdogd -registry) hot-swap published
// versions in without restarting.
//
// Usage:
//
//	frappetrain -registry DIR [-scale 0.02] [-seed ...]
//	            [-features lite|full|robust] [-rounds 3] [-interval 0]
//	            [-holdout 0.2] [-tolerance 0] [-keep 0]
//	            [-compile off|exact|rff] [-rff-dim 64]
//	            [-compile-tolerance 0] [-no-quantize]
//	            [-grow-start 0.5] [-grow-step 0.25]
//	            [-debug-addr ""] [-log-level info] [-log-json]
//
// With -compile, each accepted candidate is additionally compiled into a
// serving artifact (exact flattened form, or the approximate
// random-Fourier-features form with -compile rff) and gated on the same
// holdout: a compiled form whose accuracy regresses more than
// -compile-tolerance below the exact model is refused, and the round
// publishes exact-only. Accepted artifacts are embedded in the published
// payload, so watchdogd hot-swaps straight onto the compiled path.
//
// Each round trains on a growing prefix of the labeled view (-grow-start
// fraction on round one, +-grow-step per round, capped at the full view),
// simulating MyPageKeeper's blacklist growing between rounds; once the
// view stops changing, rounds report "unchanged" and publish nothing.
// With -interval > 0 the driver runs until interrupted; otherwise it runs
// -rounds rounds and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"

	"frappe"
	"frappe/internal/synth"
	"frappe/internal/telemetry"
)

func main() {
	registryDir := flag.String("registry", "", "model registry directory (required)")
	scale := flag.Float64("scale", 0.02, "world scale")
	seed := flag.Int64("seed", 0, "world seed (0 = default)")
	features := flag.String("features", "lite", "feature set: lite, full or robust")
	rounds := flag.Int("rounds", 3, "retraining rounds to run when -interval is 0")
	interval := flag.Duration("interval", 0, "retraining cadence (0 = run -rounds rounds and exit)")
	holdout := flag.Float64("holdout", 0.2, "holdout fraction per class for the promotion gate")
	tolerance := flag.Float64("tolerance", 0, "allowed holdout-accuracy drop before a candidate is refused")
	keep := flag.Int("keep", 0, "registry retention: GC all but the newest N versions after publish (0 = keep all)")
	compileMode := flag.String("compile", "off", "compiled inference artifact: off, exact or rff")
	rffDim := flag.Int("rff-dim", frappe.DefaultCompileOptions(frappe.CompileRFF).RFFDim,
		"random-Fourier-feature dimension for -compile rff")
	compileTolerance := flag.Float64("compile-tolerance", 0,
		"allowed holdout-accuracy drop of the compiled form vs the exact model")
	noQuantize := flag.Bool("no-quantize", false, "keep compiled weights in float64 (skip float32 quantization)")
	growStart := flag.Float64("grow-start", 0.5, "fraction of the labeled view used in round one")
	growStep := flag.Float64("grow-step", 0.25, "labeled-view growth per round")
	debugAddr := flag.String("debug-addr", "",
		"debug listen address for /metrics, /debug/vars and /debug/pprof (empty = disabled)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "log as JSON instead of text")
	flag.Parse()

	logger := telemetry.SetupProcessLogger(telemetry.LogConfig{
		Component: "frappetrain", Level: *logLevel, JSON: *logJSON,
	})
	if *registryDir == "" {
		fmt.Fprintln(os.Stderr, "usage: frappetrain -registry DIR [flags]")
		os.Exit(1)
	}
	var feats []frappe.Feature
	switch *features {
	case "lite":
		feats = frappe.LiteFeatures()
	case "full":
		feats = frappe.FullFeatures()
	case "robust":
		feats = frappe.RobustFeatures()
	default:
		fmt.Fprintf(os.Stderr, "unknown -features %q (want lite, full or robust)\n", *features)
		os.Exit(1)
	}

	if *debugAddr != "" {
		ds, err := telemetry.StartDebugServer(*debugAddr, nil)
		if err != nil {
			logger.Error("starting debug server", "addr", *debugAddr, "err", err)
			os.Exit(1)
		}
		defer ds.Close()
		logger.Info("debug server listening", "addr", ds.Addr)
	}

	reg, err := frappe.OpenModelRegistry(*registryDir)
	if err != nil {
		logger.Error("opening registry", "dir", *registryDir, "err", err)
		os.Exit(1)
	}

	cfg := synth.Default(*scale)
	if *seed != 0 {
		cfg.Seed = *seed
	}
	logger.Info("generating world", "scale", *scale, "seed", cfg.Seed)
	w := frappe.GenerateWorld(cfg)
	d, err := frappe.BuildDatasets(context.Background(), w)
	if err != nil {
		logger.Error("building datasets", "err", err)
		os.Exit(1)
	}
	records, labels := frappe.LabeledSample(d)
	logger.Info("labeled view snapshotted", "records", len(records))

	// The growing-blacklist simulation: a deterministic per-class order,
	// of which each round sees a larger prefix.
	benign, malicious := splitByLabel(records, labels)
	order := rand.New(rand.NewSource(cfg.Seed))
	order.Shuffle(len(benign), func(i, j int) { benign[i], benign[j] = benign[j], benign[i] })
	order.Shuffle(len(malicious), func(i, j int) { malicious[i], malicious[j] = malicious[j], malicious[i] })
	round := 0
	snapshot := func(context.Context) ([]frappe.AppRecord, []bool, error) {
		round++
		frac := *growStart + *growStep*float64(round-1)
		if frac > 1 {
			frac = 1
		}
		var outR []frappe.AppRecord
		var outL []bool
		take := func(idx []int, label bool) {
			n := int(float64(len(idx)) * frac)
			if n < 2 && len(idx) >= 2 {
				n = 2
			}
			for _, i := range idx[:n] {
				outR = append(outR, records[i])
				outL = append(outL, label)
			}
		}
		take(benign, false)
		take(malicious, true)
		logger.Info("labeled view for round", "round", round, "fraction", frac, "records", len(outR))
		return outR, outL, nil
	}

	var compileCfg *frappe.CompileConfig
	if *compileMode != "off" {
		mode, err := frappe.ParseCompileMode(*compileMode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unknown -compile %q (want off, exact or rff)\n", *compileMode)
			os.Exit(1)
		}
		opts := frappe.DefaultCompileOptions(mode)
		opts.RFFDim = *rffDim
		opts.Seed = cfg.Seed
		opts.Quantize = !*noQuantize
		compileCfg = &frappe.CompileConfig{Options: opts, Tolerance: *compileTolerance}
	}

	rt, err := frappe.NewRetrainer(reg, frappe.RetrainConfig{
		Snapshot:        snapshot,
		Options:         frappe.Options{Features: feats, Seed: cfg.Seed},
		HoldoutFraction: *holdout,
		Tolerance:       *tolerance,
		Compile:         compileCfg,
		Keep:            *keep,
		Notes:           fmt.Sprintf("frappetrain scale=%g seed=%d", *scale, cfg.Seed),
		Logger:          logger,
	})
	if err != nil {
		logger.Error("configuring retrainer", "err", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *interval > 0 {
		logger.Info("retraining continuously", "interval", *interval, "registry", *registryDir)
		rt.Run(ctx, *interval)
		logger.Info("shutting down")
		return
	}
	for i := 0; i < *rounds; i++ {
		res, err := rt.RunOnce(ctx)
		if err != nil {
			logger.Error("retraining round failed", "round", i+1, "err", err)
			os.Exit(1)
		}
		fmt.Printf("round %d: %s", i+1, res.Outcome)
		if res.Outcome == frappe.RetrainPublished {
			fmt.Printf(" %s (holdout accuracy %.4f)", res.Manifest.ModelID(), res.Candidate.Accuracy)
		}
		if res.Reason != "" {
			fmt.Printf(" (%s)", res.Reason)
		}
		if c := res.Compile; c != nil {
			if c.Accepted {
				fmt.Printf(" [compiled %s: agreement %.4f, max drift %.2e]",
					c.Mode, c.Parity.AgreementRate, c.Parity.MaxDecisionDrift)
			} else {
				fmt.Printf(" [compile %s refused: %s]", c.Mode, c.Reason)
			}
		}
		fmt.Println()
		if ctx.Err() != nil {
			break
		}
	}
	if m, err := reg.Latest(); err == nil {
		fmt.Printf("registry %s now serving %s (feature mode %s, %d trained records)\n",
			*registryDir, m.ModelID(), m.FeatureMode, m.TrainedRecords)
	}
}

// splitByLabel returns the indices of each class.
func splitByLabel(records []frappe.AppRecord, labels []bool) (benign, malicious []int) {
	for i := range records {
		if labels[i] {
			malicious = append(malicious, i)
		} else {
			benign = append(benign, i)
		}
	}
	return benign, malicious
}
