package frappe

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"sort"
	"time"

	"frappe/internal/telemetry"
	"frappe/internal/workerpool"
)

// The paper's long-term vision (§1, §9) is "an independent watchdog for
// app assessment and ranking, so as to warn Facebook users before
// installing apps". This file turns a Watchdog into exactly that: an HTTP
// assessment service plus a ranking API.

// Assessment is the watchdog service's verdict document.
type Assessment struct {
	AppID     string `json:"app_id"`
	Malicious bool   `json:"malicious"`
	// Score is the SVM decision value; higher means more malicious.
	Score float64 `json:"score"`
	// Deleted marks apps already removed from the graph — which the paper
	// treats as confirmation of maliciousness.
	Deleted bool   `json:"deleted,omitempty"`
	Error   string `json:"error,omitempty"`
}

// Watchdog assessment metrics (process default registry):
//
//	frappe_assessments_total{outcome}   ok / deleted / error
//	frappe_rank_fanout_width            workers used by the last Rank call
var (
	assessTotal = telemetry.Default().Counter("frappe_assessments_total",
		"Watchdog assessments, by outcome.", "outcome")
	rankFanout = telemetry.Default().Gauge("frappe_rank_fanout_width",
		"Worker-pool width used by the most recent Rank call.").With()
)

// Assess evaluates one app and folds the deleted-from-graph case into the
// verdict instead of an error: a deleted app is reported as such.
func (w *Watchdog) Assess(ctx context.Context, appID string) Assessment {
	v, err := w.Evaluate(ctx, appID)
	switch {
	case errors.Is(err, ErrNotClassifiable):
		assessTotal.With("deleted").Inc()
		return Assessment{AppID: appID, Deleted: true, Malicious: true,
			Error: "app removed from the graph"}
	case err != nil:
		assessTotal.With("error").Inc()
		return Assessment{AppID: appID, Error: err.Error()}
	default:
		assessTotal.With("ok").Inc()
		return Assessment{AppID: appID, Malicious: v.Malicious, Score: v.Score}
	}
}

// defaultRankWorkers bounds Rank's fan-out when the Watchdog does not set
// its own width.
const defaultRankWorkers = 8

// Rank assesses many apps concurrently — a bounded worker pool, width
// min(RankWorkers, len(appIDs)) — and returns them most-suspicious first
// (deleted apps lead, then by descending score). Assessment errors are
// carried in the rows rather than aborting the ranking; once ctx is
// cancelled, remaining apps are reported with the context error.
func (w *Watchdog) Rank(ctx context.Context, appIDs []string) []Assessment {
	workers := w.RankWorkers
	if workers <= 0 {
		workers = defaultRankWorkers
	}
	if workers > len(appIDs) {
		workers = len(appIDs)
	}
	rankFanout.Set(float64(workers))

	out := make([]Assessment, len(appIDs))
	workerpool.Run(len(appIDs), workers, func(idx int) {
		if err := ctx.Err(); err != nil {
			out[idx] = Assessment{AppID: appIDs[idx], Error: err.Error()}
			return
		}
		out[idx] = w.Assess(ctx, appIDs[idx])
	})

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Deleted != out[j].Deleted {
			return out[i].Deleted
		}
		return out[i].Score > out[j].Score
	})
	return out
}

// WatchdogHandler exposes a Watchdog over HTTP:
//
//	GET /check?app=APPID            -> one Assessment
//	GET /rank?app=A&app=B&app=C     -> ranked []Assessment
//	GET /healthz                    -> 200 ok
//
// Each request is bounded by timeout (default 10s). A /check whose
// assessment failed (crawl error, not a deleted-app verdict) returns 502
// with the error in the body; /rank always returns 200 and carries per-row
// errors, matching its don't-abort contract. All endpoints are
// instrumented as service "watchdog" on the default telemetry registry.
func WatchdogHandler(w *Watchdog, timeout time.Duration) http.Handler {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
		rw.Write([]byte("ok"))
	})
	mux.HandleFunc("/check", func(rw http.ResponseWriter, r *http.Request) {
		appID := r.URL.Query().Get("app")
		if appID == "" {
			http.Error(rw, `{"error":"missing app"}`, http.StatusBadRequest)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		a := w.Assess(ctx, appID)
		status := http.StatusOK
		// A deleted app is a verdict (the paper treats deletion as
		// confirmation); any other assessment error means the upstream
		// crawl failed and the verdict is unusable.
		if a.Error != "" && !a.Deleted {
			status = http.StatusBadGateway
		}
		writeAssessJSON(rw, status, a)
	})
	mux.HandleFunc("/rank", func(rw http.ResponseWriter, r *http.Request) {
		ids := r.URL.Query()["app"]
		if len(ids) == 0 {
			http.Error(rw, `{"error":"missing app parameters"}`, http.StatusBadRequest)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		writeAssessJSON(rw, http.StatusOK, w.Rank(ctx, ids))
	})
	return telemetry.Middleware(nil, "watchdog", mux)
}

func writeAssessJSON(rw http.ResponseWriter, status int, v interface{}) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	if err := json.NewEncoder(rw).Encode(v); err != nil {
		// The status line is gone; all that's left is to make the failure
		// visible to operators.
		slog.Default().Error("watchdog: encoding assessment response", "err", err)
	}
}
