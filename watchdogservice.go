package frappe

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"frappe/internal/httpx"
	"frappe/internal/telemetry"
	"frappe/internal/tracing"
	"frappe/internal/workerpool"
)

// The paper's long-term vision (§1, §9) is "an independent watchdog for
// app assessment and ranking, so as to warn Facebook users before
// installing apps". This file turns a Watchdog into exactly that: an HTTP
// assessment service plus a ranking API.

// Assessment is the watchdog service's verdict document.
type Assessment struct {
	AppID     string `json:"app_id"`
	Malicious bool   `json:"malicious"`
	// Score is the SVM decision value; higher means more malicious.
	Score float64 `json:"score"`
	// Deleted marks apps already removed from the graph — which the paper
	// treats as confirmation of maliciousness.
	Deleted bool   `json:"deleted,omitempty"`
	Error   string `json:"error,omitempty"`
	// Cause classifies why an assessment is not a plain verdict: deleted,
	// breaker_open, or upstream. Empty for a clean classification.
	Cause string `json:"cause,omitempty"`
	// Cached marks verdicts served from the TTL cache or by joining
	// another request's in-flight crawl.
	Cached bool `json:"cached,omitempty"`
	// ModelVersion identifies the model that produced this assessment
	// (ModelManifest.ModelID: version number + checksum prefix), so a
	// consumer can tell which classifier generation it is looking at —
	// and so the verdict cache never serves a superseded model's verdict.
	ModelVersion string `json:"model_version,omitempty"`
	// TraceID links this assessment to its request trace: the same value
	// appears in the X-Trace-Id response header, the service's log lines,
	// and /debug/traces. It is stamped per request — a cached verdict
	// carries the trace ID of the request that retrieved it, not of the
	// one that computed it.
	TraceID string `json:"trace_id,omitempty"`
}

// Assessment causes — the /check endpoint maps each to a distinct status.
const (
	// CauseDeleted: the app is gone from the graph (a verdict; HTTP 404).
	CauseDeleted = "deleted"
	// CauseBreakerOpen: the upstream circuit breaker is open and no crawl
	// was attempted (HTTP 503 with Retry-After).
	CauseBreakerOpen = "breaker_open"
	// CauseUpstream: the upstream crawl failed transiently (HTTP 502).
	CauseUpstream = "upstream"
	// CauseCanceled: the caller's own context was canceled or timed out
	// while waiting for a verdict (HTTP 504). Not an upstream failure —
	// the in-flight crawl it was waiting on may well still succeed for
	// the request that owns it.
	CauseCanceled = "canceled"
)

// Watchdog assessment metrics (process default registry):
//
//	frappe_assessments_total{outcome}   ok / deleted / breaker_open / error
//	frappe_rank_fanout_width            workers used by the last Rank call
var (
	assessTotal = telemetry.Default().Counter("frappe_assessments_total",
		"Watchdog assessments, by outcome.", "outcome")
	rankFanout = telemetry.Default().Gauge("frappe_rank_fanout_width",
		"Worker-pool width used by the most recent Rank call.").With()
)

// Assess evaluates one app, serving from the verdict cache when one is
// configured, and folds the deleted-from-graph case into the verdict
// instead of an error: a deleted app is reported as such. Non-verdict
// outcomes carry a Cause distinguishing an open circuit breaker from an
// ordinary upstream failure.
func (w *Watchdog) Assess(ctx context.Context, appID string) Assessment {
	ctx, span := tracing.Default().StartChild(ctx, "watchdog.assess")
	span.SetAttr(tracing.String("app_id", appID))
	// Pin the serving model once: the whole assessment — cache lookup,
	// crawl, classification, version stamp — runs against one generation
	// even if a hot swap lands mid-flight.
	sm := w.serving.Load()
	var a Assessment
	if w.cache != nil {
		a = w.cache.do(ctx, appID, sm.manifest.ModelID(),
			func(cctx context.Context) Assessment { return w.assess(cctx, sm, appID) })
	} else {
		a = w.assess(ctx, sm, appID)
	}
	if a.Cause != "" {
		span.SetAttr(tracing.String("cause", a.Cause))
	}
	if a.Cached {
		span.SetAttr(tracing.Bool("cached", true))
	}
	if a.Error != "" && !a.Deleted {
		span.SetErrorString(a.Error)
	}
	span.End()
	// Stamp the live request's trace ID — even onto cached verdicts, so
	// the JSON a client sees always matches its own X-Trace-Id header.
	if tid := tracing.TraceIDFrom(ctx); tid != "" {
		a.TraceID = tid
	}
	return a
}

func (w *Watchdog) assess(ctx context.Context, sm *servingModel, appID string) Assessment {
	modelID := sm.manifest.ModelID()
	v, err := w.evaluateWith(ctx, sm.clf, appID)
	switch {
	case errors.Is(err, ErrNotClassifiable):
		assessTotal.With("deleted").Inc()
		return Assessment{AppID: appID, Deleted: true, Malicious: true,
			Cause: CauseDeleted, Error: "app removed from the graph", ModelVersion: modelID}
	case errors.Is(err, httpx.ErrCircuitOpen):
		assessTotal.With("breaker_open").Inc()
		return Assessment{AppID: appID, Cause: CauseBreakerOpen, Error: err.Error(), ModelVersion: modelID}
	case err != nil:
		assessTotal.With("error").Inc()
		return Assessment{AppID: appID, Cause: CauseUpstream, Error: err.Error(), ModelVersion: modelID}
	default:
		assessTotal.With("ok").Inc()
		return Assessment{AppID: appID, Malicious: v.Malicious, Score: v.Score, ModelVersion: modelID}
	}
}

// defaultRankWorkers bounds Rank's fan-out when the Watchdog does not set
// its own width.
const defaultRankWorkers = 8

// Rank assesses many apps concurrently — a bounded worker pool, width
// min(RankWorkers, len(appIDs)) — and returns them most-suspicious first
// (deleted apps lead, then by descending score). Assessment errors are
// carried in the rows rather than aborting the ranking; once ctx is
// cancelled, remaining apps are reported with the context error.
func (w *Watchdog) Rank(ctx context.Context, appIDs []string) []Assessment {
	workers := w.RankWorkers
	if workers <= 0 {
		workers = defaultRankWorkers
	}
	if workers > len(appIDs) {
		workers = len(appIDs)
	}
	rankFanout.Set(float64(workers))

	out := make([]Assessment, len(appIDs))
	workerpool.Run(len(appIDs), workers, func(idx int) {
		if err := ctx.Err(); err != nil {
			out[idx] = Assessment{AppID: appIDs[idx], Error: err.Error()}
			return
		}
		out[idx] = w.Assess(ctx, appIDs[idx])
	})

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Deleted != out[j].Deleted {
			return out[i].Deleted
		}
		return out[i].Score > out[j].Score
	})
	return out
}

// HealthState is a replica's routable/draining switch. A server flips it
// to draining before http.Server.Shutdown and holds it there for a grace
// window, so health-polling upstreams (frappelb's prober) de-route the
// member while in-flight requests still complete — new connections get a
// 503 /healthz instead of an abrupt connection refusal.
type HealthState struct {
	draining atomic.Bool
}

// NewHealthState returns a routable (not draining) health state.
func NewHealthState() *HealthState { return &HealthState{} }

// SetDraining flips the state; while draining, /healthz answers 503.
func (h *HealthState) SetDraining(v bool) { h.draining.Store(v) }

// Draining reports the current state.
func (h *HealthState) Draining() bool { return h.draining.Load() }

// HandlerConfig parameterises the watchdog service handler beyond its
// Watchdog: request timeout, lifecycle administration, and the cluster
// membership surface (member identity, drain-aware health, a scrapeable
// /metrics on the serving port).
type HandlerConfig struct {
	// Timeout bounds each request (0 = 10s).
	Timeout time.Duration
	// Reloader enables POST /model/reload; nil answers 501.
	Reloader *Reloader
	// Health, when non-nil, drives /healthz: 200 "ok" while routable, 503
	// "draining" once SetDraining(true). Nil means always 200.
	Health *HealthState
	// MemberID names this replica in a cluster; when set, every response
	// carries it in an X-Frappe-Member header and /healthz includes it,
	// so the front door (and tests) can tell which member answered.
	MemberID string
	// Metrics, when non-nil, is served in Prometheus text format at
	// /metrics on the serving mux — the endpoint frappelb's aggregator
	// scrapes. Nil serves the process-default registry.
	Metrics *telemetry.Registry
}

// WatchdogHandler exposes a Watchdog over HTTP:
//
//	GET /check?app=APPID            -> one Assessment
//	GET /rank?app=A&app=B&app=C     -> ranked []Assessment
//	GET /model                      -> manifest of the serving model
//	GET /metrics                    -> Prometheus text exposition
//	GET /healthz                    -> 200 ok (503 while draining)
//
// Each request is bounded by timeout (default 10s). /check maps assessment
// outcomes onto distinct statuses: a clean verdict is 200; a deleted app is
// 404 (still a verdict — the body carries the malicious-by-deletion
// assessment); an open upstream circuit breaker is 503 with a Retry-After;
// any other upstream failure is 502; a request that ran out its own
// deadline waiting on a shared in-flight assessment is 504. /rank always
// returns 200 and carries per-row errors, matching its don't-abort
// contract. All endpoints are
// instrumented as service "watchdog" on the default telemetry registry.
func WatchdogHandler(w *Watchdog, timeout time.Duration) http.Handler {
	return NewWatchdogHandler(w, HandlerConfig{Timeout: timeout})
}

// WatchdogHandlerWith is WatchdogHandler plus model-lifecycle
// administration when a Reloader is supplied:
//
//	POST /model/reload              -> poll the registry now; 200 with a
//	                                   ReloadStatus on swapped/current,
//	                                   502 when the registry or candidate
//	                                   is unusable
//
// With a nil reloader, /model/reload answers 501 Not Implemented (the
// server has no registry to reload from) and /model still works.
func WatchdogHandlerWith(w *Watchdog, timeout time.Duration, rel *Reloader) http.Handler {
	return NewWatchdogHandler(w, HandlerConfig{Timeout: timeout, Reloader: rel})
}

// NewWatchdogHandler is the full-surface constructor; see HandlerConfig.
func NewWatchdogHandler(w *Watchdog, cfg HandlerConfig) http.Handler {
	timeout := cfg.Timeout
	rel := cfg.Reloader
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	metricsReg := cfg.Metrics
	if metricsReg == nil {
		metricsReg = telemetry.Default()
	}
	retryAfter := strconv.Itoa(int((httpx.DefaultBreakerCooldown + time.Second - 1) / time.Second))
	if w.cfg.BreakerCooldown > 0 {
		retryAfter = strconv.Itoa(int((w.cfg.BreakerCooldown + time.Second - 1) / time.Second))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		if cfg.Health != nil && cfg.Health.Draining() {
			rw.WriteHeader(http.StatusServiceUnavailable)
			rw.Write([]byte("draining"))
			return
		}
		rw.WriteHeader(http.StatusOK)
		rw.Write([]byte("ok"))
	})
	mux.Handle("/metrics", metricsReg.Handler())
	mux.HandleFunc("/check", func(rw http.ResponseWriter, r *http.Request) {
		appID := r.URL.Query().Get("app")
		if appID == "" {
			http.Error(rw, `{"error":"missing app"}`, http.StatusBadRequest)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		a := w.Assess(ctx, appID)
		status := http.StatusOK
		switch a.Cause {
		case CauseDeleted:
			// A deleted app is a verdict (the paper treats deletion as
			// confirmation), but the resource itself is gone.
			status = http.StatusNotFound
		case CauseBreakerOpen:
			status = http.StatusServiceUnavailable
			rw.Header().Set("Retry-After", retryAfter)
		case CauseUpstream:
			status = http.StatusBadGateway
		case CauseCanceled:
			status = http.StatusGatewayTimeout
		}
		if status != http.StatusOK {
			// The ctx carries the request span, so the trace-aware slog
			// handler stamps trace_id — an operator can jump from this
			// line straight to the span tree at /debug/traces.
			slog.Default().WarnContext(ctx, "watchdog: non-OK assessment",
				"app", appID, "status", status, "cause", a.Cause, "err", a.Error)
		}
		writeAssessJSON(rw, status, a)
	})
	mux.HandleFunc("/rank", func(rw http.ResponseWriter, r *http.Request) {
		ids := r.URL.Query()["app"]
		if len(ids) == 0 {
			http.Error(rw, `{"error":"missing app parameters"}`, http.StatusBadRequest)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		writeAssessJSON(rw, http.StatusOK, w.Rank(ctx, ids))
	})
	mux.HandleFunc("/model", func(rw http.ResponseWriter, r *http.Request) {
		m := w.ServingManifest()
		writeAssessJSON(rw, http.StatusOK, struct {
			ModelID  string        `json:"model_id"`
			Manifest ModelManifest `json:"manifest"`
		}{ModelID: m.ModelID(), Manifest: m})
	})
	mux.HandleFunc("/model/reload", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, `{"error":"POST only"}`, http.StatusMethodNotAllowed)
			return
		}
		if rel == nil {
			http.Error(rw, `{"error":"no model registry configured"}`, http.StatusNotImplemented)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		st := rel.Check(ctx)
		status := http.StatusOK
		if st.Outcome != ReloadSwapped && st.Outcome != ReloadCurrent {
			status = http.StatusBadGateway
		}
		writeAssessJSON(rw, status, st)
	})
	var h http.Handler = mux
	if cfg.MemberID != "" {
		inner := h
		h = http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			rw.Header().Set("X-Frappe-Member", cfg.MemberID)
			inner.ServeHTTP(rw, r)
		})
	}
	return telemetry.Middleware(nil, "watchdog", h)
}

func writeAssessJSON(rw http.ResponseWriter, status int, v interface{}) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	if err := json.NewEncoder(rw).Encode(v); err != nil {
		// The status line is gone; all that's left is to make the failure
		// visible to operators.
		slog.Default().Error("watchdog: encoding assessment response", "err", err)
	}
}
