package frappe

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"time"
)

// The paper's long-term vision (§1, §9) is "an independent watchdog for
// app assessment and ranking, so as to warn Facebook users before
// installing apps". This file turns a Watchdog into exactly that: an HTTP
// assessment service plus a ranking API.

// Assessment is the watchdog service's verdict document.
type Assessment struct {
	AppID     string `json:"app_id"`
	Malicious bool   `json:"malicious"`
	// Score is the SVM decision value; higher means more malicious.
	Score float64 `json:"score"`
	// Deleted marks apps already removed from the graph — which the paper
	// treats as confirmation of maliciousness.
	Deleted bool   `json:"deleted,omitempty"`
	Error   string `json:"error,omitempty"`
}

// Assess evaluates one app and folds the deleted-from-graph case into the
// verdict instead of an error: a deleted app is reported as such.
func (w *Watchdog) Assess(ctx context.Context, appID string) Assessment {
	v, err := w.Evaluate(ctx, appID)
	switch {
	case errors.Is(err, ErrNotClassifiable):
		return Assessment{AppID: appID, Deleted: true, Malicious: true,
			Error: "app removed from the graph"}
	case err != nil:
		return Assessment{AppID: appID, Error: err.Error()}
	default:
		return Assessment{AppID: appID, Malicious: v.Malicious, Score: v.Score}
	}
}

// Rank assesses many apps and returns them most-suspicious first (deleted
// apps lead, then by descending score). Assessment errors are carried in
// the rows rather than aborting the ranking.
func (w *Watchdog) Rank(ctx context.Context, appIDs []string) []Assessment {
	out := make([]Assessment, 0, len(appIDs))
	for _, id := range appIDs {
		out = append(out, w.Assess(ctx, id))
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Deleted != out[j].Deleted {
			return out[i].Deleted
		}
		return out[i].Score > out[j].Score
	})
	return out
}

// WatchdogHandler exposes a Watchdog over HTTP:
//
//	GET /check?app=APPID            -> one Assessment
//	GET /rank?app=A&app=B&app=C     -> ranked []Assessment
//	GET /healthz                    -> 200 ok
//
// Each request is bounded by timeout (default 10s).
func WatchdogHandler(w *Watchdog, timeout time.Duration) http.Handler {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
		rw.Write([]byte("ok"))
	})
	mux.HandleFunc("/check", func(rw http.ResponseWriter, r *http.Request) {
		appID := r.URL.Query().Get("app")
		if appID == "" {
			http.Error(rw, `{"error":"missing app"}`, http.StatusBadRequest)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		writeAssessJSON(rw, w.Assess(ctx, appID))
	})
	mux.HandleFunc("/rank", func(rw http.ResponseWriter, r *http.Request) {
		ids := r.URL.Query()["app"]
		if len(ids) == 0 {
			http.Error(rw, `{"error":"missing app parameters"}`, http.StatusBadRequest)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		writeAssessJSON(rw, w.Rank(ctx, ids))
	})
	return mux
}

func writeAssessJSON(rw http.ResponseWriter, v interface{}) {
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(v)
}
