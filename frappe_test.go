package frappe

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"frappe/internal/synth"
)

var (
	once  sync.Once
	world *World
	data  *Datasets
)

func sharedWorld(t *testing.T) (*World, *Datasets) {
	t.Helper()
	once.Do(func() {
		cfg := synth.Default(0.06)
		cfg.MaxMaterializedPostsPerApp = 80
		world = GenerateWorld(cfg)
		var err error
		data, err = BuildDatasets(context.Background(), world)
		if err != nil {
			t.Fatalf("BuildDatasets: %v", err)
		}
	})
	if data == nil {
		t.Fatal("shared world unavailable")
	}
	return world, data
}

func TestEndToEndTrainAndClassify(t *testing.T) {
	_, d := sharedWorld(t)
	records, labels := CompleteSample(d)
	m, err := CrossValidate(records, labels, 5, Options{Features: FullFeatures(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("public API CV: %v", m)
	if m.Accuracy() < 0.93 {
		t.Errorf("accuracy = %.3f", m.Accuracy())
	}
}

func TestWatchdogOverHTTP(t *testing.T) {
	w, d := sharedWorld(t)
	records, labels := LabeledSample(d)
	clf, err := Train(records, labels, Options{Features: LiteFeatures(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := StartServices(w)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Round-trip the classifier through its serialised form, like a real
	// watchdog deployment would.
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatal(err)
	}
	wd, err := NewWatchdogFrom(&buf, st.GraphURL, st.WOTURL)
	if err != nil {
		t.Fatal(err)
	}

	// A live malicious app and a live benign app.
	var malID, benID string
	for _, id := range w.MaliciousIDs {
		// Pick a live, classic (unpolished) scam app.
		app, err := w.Platform.Lookup(id)
		if err == nil && app.Description == "" {
			malID = id
			break
		}
	}
	for _, id := range w.BenignIDs {
		if _, err := w.Platform.Lookup(id); err == nil {
			benID = id
			break
		}
	}
	if malID == "" || benID == "" {
		t.Fatal("no live apps to evaluate")
	}
	vm, err := wd.Evaluate(context.Background(), malID)
	if err != nil {
		t.Fatalf("Evaluate(malicious): %v", err)
	}
	if !vm.Malicious {
		t.Errorf("malicious app %s classified benign (score %.3f)", malID, vm.Score)
	}
	vb, err := wd.Evaluate(context.Background(), benID)
	if err != nil {
		t.Fatalf("Evaluate(benign): %v", err)
	}
	if vb.Malicious {
		t.Errorf("benign app %s classified malicious (score %.3f)", benID, vb.Score)
	}

	// Deleted apps cannot be evaluated.
	var deleted string
	for _, id := range w.MaliciousIDs {
		if _, err := w.Platform.Lookup(id); err != nil {
			deleted = id
			break
		}
	}
	if deleted != "" {
		if _, err := wd.Evaluate(context.Background(), deleted); !errors.Is(err, ErrNotClassifiable) {
			t.Errorf("deleted app err = %v, want ErrNotClassifiable", err)
		}
	}
}

func TestNewWatchdogValidation(t *testing.T) {
	if _, err := NewWatchdog(nil, "http://x", "http://y"); err == nil {
		t.Error("nil classifier: want error")
	}
	if _, err := NewWatchdogFrom(bytes.NewReader([]byte("bogus")), "http://x", "http://y"); err == nil {
		t.Error("bogus model: want error")
	}
}

func TestForensicsFacade(t *testing.T) {
	w, d := sharedWorld(t)
	summary := BuildCollaborationGraph(w, d.Malicious)
	if summary.Apps == 0 || summary.Edges == 0 {
		t.Errorf("empty collaboration graph: %+v", summary)
	}
	findings := DetectPiggybacking(w, 0.2)
	if len(findings) == 0 {
		t.Error("no piggybacking findings")
	}
	for _, f := range findings[:1] {
		if f.Name == "" {
			t.Error("finding lacks app name")
		}
	}
}

func TestSampleHelpers(t *testing.T) {
	_, d := sharedWorld(t)
	records, labels := LabeledSample(d)
	if len(records) != len(labels) || len(records) == 0 {
		t.Fatalf("labeled sample: %d records %d labels", len(records), len(labels))
	}
	sub, subL, err := SampleRatio(records, labels, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	var mal int
	for _, l := range subL {
		if l {
			mal++
		}
	}
	if len(sub)-mal != 4*mal {
		t.Errorf("ratio wrong: %d benign vs %d malicious", len(sub)-mal, mal)
	}
}

func TestWatchdogService(t *testing.T) {
	w, d := sharedWorld(t)
	records, labels := LabeledSample(d)
	clf, err := Train(records, labels, Options{Features: LiteFeatures(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := StartServices(w)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	wd, err := NewWatchdog(clf, st.GraphURL, st.WOTURL)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(WatchdogHandler(wd, 10*time.Second))
	defer srv.Close()

	// Liveness.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}

	// One live classic scam, one live benign app, one deleted app.
	var mal, ben, deleted string
	for _, id := range w.MaliciousIDs {
		app, err := w.Platform.Lookup(id)
		if err != nil {
			if deleted == "" {
				deleted = id
			}
			continue
		}
		if mal == "" && app.Description == "" {
			mal = id
		}
	}
	for _, id := range w.BenignIDs {
		if _, err := w.Platform.Lookup(id); err == nil {
			ben = id
			break
		}
	}
	check := func(id string) Assessment {
		t.Helper()
		resp, err := http.Get(srv.URL + "/check?app=" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var a Assessment
		if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
			t.Fatal(err)
		}
		return a
	}
	if a := check(mal); !a.Malicious {
		t.Errorf("scam assessment = %+v", a)
	}
	if a := check(ben); a.Malicious {
		t.Errorf("benign assessment = %+v", a)
	}
	if a := check(deleted); !a.Deleted || !a.Malicious {
		t.Errorf("deleted assessment = %+v", a)
	}

	// Ranking: deleted first, then the scam, then the benign app.
	resp, err = http.Get(srv.URL + "/rank?app=" + ben + "&app=" + mal + "&app=" + deleted)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ranked []Assessment
	if err := json.NewDecoder(resp.Body).Decode(&ranked); err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("ranked = %d rows", len(ranked))
	}
	if ranked[0].AppID != deleted || ranked[1].AppID != mal || ranked[2].AppID != ben {
		t.Errorf("rank order: %s %s %s (want deleted, scam, benign)",
			ranked[0].AppID, ranked[1].AppID, ranked[2].AppID)
	}

	// Bad requests.
	for _, path := range []string{"/check", "/rank"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s without params = %d", path, resp.StatusCode)
		}
	}
}
