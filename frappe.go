// Package frappe is a Go reproduction of "FRAppE: Detecting Malicious
// Facebook Applications" (Rahman, Huang, Madhyastha, Faloutsos — CoNEXT
// 2012): a classifier that decides, given a Facebook application's ID,
// whether the app is malicious.
//
// The original system was built on the 2011-2012 Facebook platform and a
// proprietary MyPageKeeper crawl of 2.2M users; this package rebuilds every
// substrate as a faithful simulator (see DESIGN.md) and reproduces the
// paper's measurement, classification, and forensics pipelines on top:
//
//   - GenerateWorld creates a calibrated synthetic Facebook-like universe:
//     benign developers, AppNet-operating hackers, nine months of posting,
//     bit.ly links with click traffic, WOT reputations, app deletion.
//   - BuildDatasets assembles D-Total / D-Sample / D-Summary / D-Inst /
//     D-ProfileFeed / D-Complete exactly as §2.3 describes, crawling the
//     simulated Graph API (over HTTP, or in-process for speed).
//   - Train / CrossValidate fit the SVM classifier (FRAppE Lite's seven
//     on-demand features, or full FRAppE with the two aggregation-based
//     features) and evaluate it the way Tables 5-6 and §5.2 do.
//   - NewWatchdog evaluates a single app ID on demand against live (simulated)
//     services — the browser-extension scenario the paper envisions.
//   - BuildCollaborationGraph / SurveySites / DetectPiggybacking run the
//     §6 AppNet forensics.
//
// See the examples directory for runnable end-to-end scenarios and
// EXPERIMENTS.md for paper-vs-measured numbers of every table and figure.
package frappe

import (
	"context"

	"frappe/internal/core"
	"frappe/internal/datasets"
	"frappe/internal/forensics"
	"frappe/internal/graphapi"
	"frappe/internal/stack"
	"frappe/internal/synth"
	"frappe/internal/wot"
)

// World is a generated synthetic universe (platform, services, monitor).
type World = synth.World

// WorldConfig parameterises world generation; every default is calibrated
// against a number the paper reports.
type WorldConfig = synth.Config

// Datasets is the assembled corpus of §2.3 (Table 1).
type Datasets = datasets.Datasets

// AppRecord bundles what FRAppE knows about one app: its on-demand crawl
// and, when available, MyPageKeeper's aggregation view.
type AppRecord = core.AppRecord

// Classifier is a trained FRAppE instance.
type Classifier = core.Classifier

// Verdict is one classification outcome.
type Verdict = core.Verdict

// Metrics is a confusion-matrix summary (accuracy / FP rate / FN rate).
type Metrics = core.Metrics

// Options configures training (feature set, SVM parameters, seed).
type Options = core.Options

// Feature identifies one classifier input.
type Feature = core.Feature

// Stack runs a world's services as loopback HTTP servers.
type Stack = stack.Stack

// ServiceFaults are per-service fault-injection knobs (error rate, hang
// rate, added latency) for a running stack.
type ServiceFaults = stack.ServiceFaults

// FaultSpec configures deterministic, seeded fault injection across a
// stack's services; see StartServicesWithFaults.
type FaultSpec = stack.FaultSpec

// DefaultConfig returns the paper-calibrated world configuration at the
// given scale; 1.0 reproduces the full 111K-app corpus, experiments
// default to 0.1.
func DefaultConfig(scale float64) WorldConfig { return synth.Default(scale) }

// GenerateWorld builds a synthetic world.
func GenerateWorld(cfg WorldConfig) *World { return synth.Generate(cfg) }

// StartServices exposes the world's services (Graph API, bit.ly, WOT,
// Social Bakers, indirection redirector) over loopback HTTP.
func StartServices(w *World) (*Stack, error) { return stack.Start(w) }

// StartServicesWithFaults is StartServices with deterministic fault
// injection: every service is wrapped with seeded error/hang/latency
// middleware so resilience behaviour is reproducible. A nil spec behaves
// exactly like StartServices.
func StartServicesWithFaults(w *World, faults *FaultSpec) (*Stack, error) {
	return stack.StartOpts(w, stack.Options{Faults: faults})
}

// BuildDatasets assembles the corpus in-process (fast path). Use
// BuildDatasetsHTTP to exercise the full networking stack.
func BuildDatasets(ctx context.Context, w *World) (*Datasets, error) {
	b := &datasets.Builder{World: w}
	return b.Build(ctx)
}

// BuildDatasetsHTTP assembles the corpus by crawling the given Graph API
// and WOT endpoints, exactly as the paper's Selenium pipeline did.
func BuildDatasetsHTTP(ctx context.Context, w *World, graphURL, wotURL string, workers int) (*Datasets, error) {
	b := &datasets.Builder{
		World:   w,
		Graph:   &graphapi.Client{BaseURL: graphURL},
		WOT:     &wot.Client{BaseURL: wotURL},
		Workers: workers,
	}
	return b.Build(ctx)
}

// Records assembles AppRecords for the given app IDs from a built corpus.
func Records(d *Datasets, ids []string) []AppRecord {
	out := make([]AppRecord, 0, len(ids))
	for _, id := range ids {
		out = append(out, AppRecord{ID: id, Crawl: d.Crawl[id], Stats: d.Stats[id]})
	}
	return out
}

// LabeledSample returns D-Sample as records plus labels (true=malicious),
// skipping apps whose summary crawl failed (they cannot be classified).
func LabeledSample(d *Datasets) ([]AppRecord, []bool) {
	var records []AppRecord
	var labels []bool
	add := func(ids []string, malicious bool) {
		for _, r := range Records(d, ids) {
			if r.Crawl == nil || r.Crawl.SummaryErr != nil {
				continue
			}
			records = append(records, r)
			labels = append(labels, malicious)
		}
	}
	add(d.Benign, false)
	add(d.Malicious, true)
	return records, labels
}

// CompleteSample returns the D-Complete subset as records plus labels.
func CompleteSample(d *Datasets) ([]AppRecord, []bool) {
	ben, mal := d.DComplete()
	records := append(Records(d, ben), Records(d, mal)...)
	labels := make([]bool, len(records))
	for i := len(ben); i < len(records); i++ {
		labels[i] = true
	}
	return records, labels
}

// LiteFeatures is FRAppE Lite's on-demand feature set (Table 4).
func LiteFeatures() []Feature { return core.LiteFeatures() }

// FullFeatures is full FRAppE's feature set (Table 4 + Table 7).
func FullFeatures() []Feature { return core.FullFeatures() }

// RobustFeatures is the obfuscation-resistant subset of §7.
func RobustFeatures() []Feature { return core.RobustFeatures() }

// Train fits a FRAppE classifier on labelled records (true = malicious).
func Train(records []AppRecord, labels []bool, opts Options) (*Classifier, error) {
	return core.Train(records, labels, opts)
}

// CrossValidate runs stratified k-fold cross-validation (the paper uses
// k = 5).
func CrossValidate(records []AppRecord, labels []bool, k int, opts Options) (Metrics, error) {
	return core.CrossValidate(records, labels, k, opts)
}

// Evaluate classifies labelled records through the vectorised batch path
// and tallies the confusion matrix — the shadow-evaluation primitive the
// retraining promotion gate is built on.
func Evaluate(c *Classifier, records []AppRecord, labels []bool) (Metrics, error) {
	return core.Evaluate(c, records, labels)
}

// SampleRatio draws a benign:malicious = ratio:1 subsample (Table 5).
func SampleRatio(records []AppRecord, labels []bool, ratio int, seed int64) ([]AppRecord, []bool, error) {
	return core.SampleRatio(records, labels, ratio, seed)
}

// CollaborationGraph is the §6 promotion graph over app IDs.
type CollaborationGraph = forensics.GraphSummary

// BuildCollaborationGraph reconstructs the AppNet collaboration structure
// from the links the candidate apps posted and summarises it (§6.1).
func BuildCollaborationGraph(w *World, candidates []string) CollaborationGraph {
	g, promos := forensics.BuildGraph(candidates, w.Monitor.Apps(), forensics.NewWorldResolver(w))
	return forensics.Summarize(g, promos)
}

// PiggybackFinding is a suspected victim of app piggybacking (§6.2).
type PiggybackFinding = forensics.PiggybackFinding

// DetectPiggybacking lists flagged apps whose malicious-post ratio is
// suspiciously low (< maxRatio), sorted by posting volume (Table 9).
func DetectPiggybacking(w *World, maxRatio float64) []PiggybackFinding {
	names := make(map[string]string)
	stats := w.Monitor.Apps()
	for id := range stats {
		if app, err := w.Platform.App(id); err == nil {
			names[id] = app.Name
		}
	}
	return forensics.DetectPiggybacking(stats, names, maxRatio)
}
