package frappe

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"encoding/json"
)

// End-to-end compiled inference: compile gate → manifest provenance →
// hot-swap. The acceptance story: an RFF compile whose holdout accuracy
// regresses is refused and never reaches the registry, an accepted compile
// publishes with full provenance in the manifest, and a serving process
// hot-swaps the compiled payload in under concurrent load with zero failed
// requests and verdicts identical to the exact model's.

// TestCompileGateRefusesRegressingRFF: a one-dimensional Fourier map
// cannot track an RBF expansion, so its holdout accuracy collapses and
// both the direct gate and the retrainer must refuse it — while the
// retrainer still publishes the exact model with the refusal on record.
func TestCompileGateRefusesRegressingRFF(t *testing.T) {
	_, d := sharedWorld(t)
	records, labels := LabeledSample(d)

	crippled := DefaultCompileOptions(CompileRFF)
	crippled.RFFDim = 1

	clf := trainLifecycle(t, 2, 0)
	parity, err := CompileClassifier(clf, records, labels, crippled, 0)
	if !errors.Is(err, ErrCompileRefused) {
		t.Fatalf("CompileClassifier(rff dim=1): err = %v, want ErrCompileRefused", err)
	}
	if clf.Compiled() != nil {
		t.Error("refused compile left an artifact pinned; serving would use it")
	}
	if parity.Samples == 0 || parity.CompiledAccuracy >= parity.ExactAccuracy {
		t.Errorf("refusal parity not auditable: %+v", parity)
	}
	// The classifier still serves exact verdicts after the refusal.
	if _, err := clf.Classify(records[0]); err != nil {
		t.Fatalf("Classify after refused compile: %v", err)
	}

	// Retrainer path: the round publishes exact-only and reports the refusal.
	reg, err := OpenModelRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRetrainer(reg, RetrainConfig{
		Snapshot: func(context.Context) ([]AppRecord, []bool, error) {
			return records, labels, nil
		},
		Options: Options{Features: LiteFeatures(), Seed: 2},
		CVFolds: -1,
		Compile: &CompileConfig{Options: crippled},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != RetrainPublished {
		t.Fatalf("round outcome = %q (%s), want published (refused compile must not block the round)",
			res.Outcome, res.Reason)
	}
	if res.Compile == nil || res.Compile.Accepted || res.Compile.Reason == "" {
		t.Fatalf("compile report = %+v, want an explained refusal", res.Compile)
	}
	if res.Manifest.Compile != nil {
		t.Errorf("refused compile stamped into manifest: %+v", res.Manifest.Compile)
	}
	// The published payload carries no compiled artifact.
	loaded, _, err := LoadClassifier(reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Compiled() != nil {
		t.Error("published payload carries the refused artifact")
	}
}

// TestCompileAcceptedPublishesProvenance: a healthy RFF compile passes the
// gate, ships inside the payload, and the manifest records the full recipe
// and parity numbers.
func TestCompileAcceptedPublishesProvenance(t *testing.T) {
	_, d := sharedWorld(t)
	records, labels := LabeledSample(d)
	reg, err := OpenModelRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultCompileOptions(CompileRFF)
	opts.Seed = 2
	rt, err := NewRetrainer(reg, RetrainConfig{
		Snapshot: func(context.Context) ([]AppRecord, []bool, error) {
			return records, labels, nil
		},
		Options: Options{Features: LiteFeatures(), Seed: 2},
		CVFolds: -1,
		Compile: &CompileConfig{Options: opts, Tolerance: 0.02},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != RetrainPublished {
		t.Fatalf("round outcome = %q (%s), want published", res.Outcome, res.Reason)
	}
	if res.Compile == nil || !res.Compile.Accepted {
		t.Fatalf("compile report = %+v, want accepted", res.Compile)
	}
	ci := res.Manifest.Compile
	if ci == nil {
		t.Fatal("accepted compile missing from manifest")
	}
	if ci.Mode != "rff" || ci.RFFDim != opts.RFFDim || ci.Seed != 2 || !ci.Quantized {
		t.Errorf("manifest compile provenance = %+v, want rff/d=%d/seed=2/quantized", ci, opts.RFFDim)
	}
	if ci.AgreementRate <= 0.9 || ci.HoldoutAccuracy <= 0 {
		t.Errorf("manifest parity numbers implausible: %+v", ci)
	}
	loaded, _, err := LoadClassifier(reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cm := loaded.Compiled(); cm == nil || cm.String() != "rff(d=64,seed=2,float32)" {
		t.Errorf("loaded payload compiled artifact = %v, want rff(d=64,seed=2,float32)", cm)
	}
}

// TestCompiledHotSwapServesIdenticalVerdicts: publish an exact v1, record
// its served verdicts, then hot-swap in a compiled-exact v2 of the same
// model under concurrent /check load. Zero requests may fail across the
// swap, and post-swap verdicts must be bit-identical to v1's — the exact
// compile changes the serving data layout, never the decision. A final RFF
// v3 swap must keep every verdict label-identical.
func TestCompiledHotSwapServesIdenticalVerdicts(t *testing.T) {
	reg, err := OpenModelRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	v1 := trainLifecycle(t, 2, 4)
	m1, err := PublishClassifier(reg, v1, ModelManifest{Notes: "v1-exact"})
	if err != nil {
		t.Fatal(err)
	}
	srv, wd := lifecycleServer(t, reg)
	ids := liveApps(t, 3)
	if len(ids) == 0 {
		t.Skip("world has no live apps")
	}

	baseline := make(map[string]Assessment, len(ids))
	for _, id := range ids {
		_, a := getAssessment(t, srv.URL+"/check?app="+id)
		if a.ModelVersion != m1.ModelID() {
			t.Fatalf("baseline verdict stamped %q, want %q", a.ModelVersion, m1.ModelID())
		}
		baseline[id] = a
	}

	// v2: the identical training recipe (deterministic ⇒ the same SVM),
	// compiled exact. Same decisions, different payload bytes.
	_, d := sharedWorld(t)
	records, labels := LabeledSample(d)
	v2 := trainLifecycle(t, 2, 4)
	if _, err := CompileClassifier(v2, records, labels, DefaultCompileOptions(CompileExact), 0); err != nil {
		t.Fatalf("compiling v2 exact: %v", err)
	}
	m2, err := PublishClassifier(reg, v2, ModelManifest{
		Notes:   "v2-compiled-exact",
		Compile: &CompileInfo{Mode: "exact", Quantized: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m2.ModelID() == m1.ModelID() {
		t.Fatal("compiled payload content-identical to exact; artifact not embedded")
	}

	// Hammer /check across the swap; every request must complete.
	var (
		stop     atomic.Bool
		requests atomic.Int64
		failures atomic.Int64
	)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				resp, err := http.Get(srv.URL + "/check?app=" + ids[(g+i)%len(ids)])
				if err != nil {
					failures.Add(1)
					t.Errorf("worker %d: %v", g, err)
					continue
				}
				var a Assessment
				decErr := json.NewDecoder(resp.Body).Decode(&a)
				resp.Body.Close()
				requests.Add(1)
				if decErr != nil || (resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound) {
					failures.Add(1)
					t.Errorf("worker %d: status %d, decode %v", g, resp.StatusCode, decErr)
				}
			}
		}(g)
	}
	time.Sleep(30 * time.Millisecond)
	st := postReload(t, srv)
	if st.Outcome != ReloadSwapped {
		t.Fatalf("swap to compiled v2: %q (%s)", st.Outcome, st.Error)
	}
	time.Sleep(30 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d of %d requests failed across the compiled hot-swap", n, requests.Load())
	}
	if got := wd.ServingManifest(); got.ModelID() != m2.ModelID() || got.Compile == nil {
		t.Fatalf("serving manifest after swap = %s (compile %+v), want %s with compile info",
			got.ModelID(), got.Compile, m2.ModelID())
	}

	// Post-swap verdicts: bit-identical scores under the exact compile.
	for _, id := range ids {
		_, a := getAssessment(t, srv.URL+"/check?app="+id)
		want := baseline[id]
		if a.ModelVersion != m2.ModelID() {
			t.Errorf("post-swap verdict for %s stamped %q, want %q", id, a.ModelVersion, m2.ModelID())
		}
		if a.Malicious != want.Malicious || a.Score != want.Score || a.Deleted != want.Deleted {
			t.Errorf("compiled-exact verdict for %s diverged: %+v, want %+v", id, a, want)
		}
	}

	// v3: the same model compiled to RFF through the gate. Scores are
	// approximate by construction; the decisions must hold.
	v3 := trainLifecycle(t, 2, 4)
	opts := DefaultCompileOptions(CompileRFF)
	opts.Seed = 2
	if _, err := CompileClassifier(v3, records, labels, opts, 0.02); err != nil {
		t.Fatalf("compiling v3 rff: %v", err)
	}
	m3, err := PublishClassifier(reg, v3, ModelManifest{Notes: "v3-compiled-rff"})
	if err != nil {
		t.Fatal(err)
	}
	if st := postReload(t, srv); st.Outcome != ReloadSwapped {
		t.Fatalf("swap to rff v3: %q (%s)", st.Outcome, st.Error)
	}
	for _, id := range ids {
		_, a := getAssessment(t, srv.URL+"/check?app="+id)
		want := baseline[id]
		if a.ModelVersion != m3.ModelID() {
			t.Errorf("rff verdict for %s stamped %q, want %q", id, a.ModelVersion, m3.ModelID())
		}
		if a.Malicious != want.Malicious || a.Deleted != want.Deleted {
			t.Errorf("rff verdict for %s flipped: %+v, want label of %+v", id, a, want)
		}
	}
}
