package frappe

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"frappe/internal/cluster"
	"frappe/internal/mypagekeeper"
	"frappe/internal/stack"
	"frappe/internal/telemetry"
	"frappe/internal/wal"
)

// End-to-end cluster serving: 3 watchdog replicas behind the
// internal/cluster front door. The acceptance story: killing and
// restarting any single replica during sustained /check load yields zero
// failed client requests, verdicts identical to a single-node run, and a
// registry publish converges the whole fleet onto one model version.

// clusterFixture is a running 3-replica topology: shared world services,
// one model registry all replicas load from, an ingestion WAL for rejoin
// bootstrap, the replica set, the cluster front door, and its LB server.
type clusterFixture struct {
	reg    *ModelRegistry
	m1     ModelManifest
	rs     *stack.ReplicaSet
	c      *cluster.Cluster
	lb     *httptest.Server
	ctx    context.Context
	walDir string

	graphURL, wotURL string
	probe            []AppRecord

	mu     sync.Mutex
	health map[string]*HealthState
}

// replicaHandler builds one replica's full serving handler: a fresh
// registry-backed watchdog, reloader, drain-aware health and member
// identity — what one watchdogd process would run.
func (f *clusterFixture) replicaHandler(t *testing.T, id string) http.Handler {
	t.Helper()
	wd, err := NewWatchdogFromRegistry(f.reg, WatchdogConfig{
		GraphURL:   f.graphURL,
		WOTURL:     f.wotURL,
		VerdictTTL: time.Minute,
	})
	if err != nil {
		t.Fatalf("replica %s: watchdog from registry: %v", id, err)
	}
	rel := NewReloader(wd, f.reg, ReloadConfig{Probe: f.probe})
	h := NewHealthState()
	f.mu.Lock()
	f.health[id] = h
	f.mu.Unlock()
	return NewWatchdogHandler(wd, HandlerConfig{
		Timeout:  15 * time.Second,
		Reloader: rel,
		Health:   h,
		MemberID: id,
	})
}

// rejoinHandler is replicaHandler plus the rejoin bootstrap a restarted
// watchdogd performs with -wal-replay: rebuild the blacklist replica from
// the ingestion WAL and commit this member's consumer offset.
func (f *clusterFixture) rejoinHandler(t *testing.T, id string) http.Handler {
	t.Helper()
	wlog, err := wal.Open(f.walDir, wal.Options{})
	if err != nil {
		t.Fatalf("rejoin %s: opening WAL: %v", id, err)
	}
	defer wlog.Close()
	replica := mypagekeeper.New(mypagekeeper.DefaultClassifierConfig())
	replica.SubscribeRange(0, 100)
	stats, err := mypagekeeper.Replay(replica, wlog, 0, nil)
	if err != nil {
		t.Fatalf("rejoin %s: WAL replay: %v", id, err)
	}
	if stats.Records == 0 {
		t.Fatalf("rejoin %s: WAL replay saw no records", id)
	}
	if err := wlog.CommitConsumer("watchdogd-"+id, stats.Next); err != nil {
		t.Fatalf("rejoin %s: committing consumer offset: %v", id, err)
	}
	return f.replicaHandler(t, id)
}

// newClusterFixture starts n replicas and the front door. The prober runs
// fast (25ms) so the tests' de-route/rejoin waits stay sub-second.
func newClusterFixture(t *testing.T, n int) *clusterFixture {
	t.Helper()
	w, d := sharedWorld(t)
	st, err := StartServices(w)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)

	reg, err := OpenModelRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	v1 := trainLifecycle(t, 2, 4)
	m1, err := PublishClassifier(reg, v1, ModelManifest{Notes: "v1"})
	if err != nil {
		t.Fatal(err)
	}
	records, _ := LabeledSample(d)
	probe := records
	if len(probe) > 8 {
		probe = probe[:8]
	}

	// The ingestion WAL a restarted member replays at rejoin.
	walDir := t.TempDir()
	producer := mypagekeeper.New(mypagekeeper.DefaultClassifierConfig())
	producer.SubscribeRange(0, 100)
	wlog, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	walWithPosts(t, wlog, producer, 0, 30)
	wlog.Close()

	f := &clusterFixture{
		reg: reg, m1: m1, walDir: walDir,
		graphURL: st.GraphURL, wotURL: st.WOTURL,
		probe:  probe,
		health: make(map[string]*HealthState),
	}

	ids := make([]string, n)
	for i := range ids {
		ids[i] = "w" + string(rune('1'+i))
	}
	rs, err := stack.StartReplicas(ids, func(_ int, id string) http.Handler {
		return f.replicaHandler(t, id)
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rs.Close)
	f.rs = rs

	members := make([]cluster.Member, n)
	for i := range members {
		members[i] = cluster.Member{ID: rs.ID(i), URL: rs.URL(i)}
	}
	c, err := cluster.New(cluster.Config{
		Members:       members,
		ProbeInterval: 25 * time.Millisecond,
		// A short breaker cooldown so a restarted member's open circuit
		// half-opens within the test window instead of the 10s default.
		BreakerCooldown: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	c.Start(ctx)
	f.c, f.ctx = c, ctx

	lb := httptest.NewServer(telemetry.Middleware(nil, "frappelb", c.Handler()))
	t.Cleanup(lb.Close)
	f.lb = lb

	if !c.WaitHealthy(ctx, n, 5*time.Second) {
		t.Fatalf("cluster never reached %d healthy members", n)
	}
	return f
}

// normalizeAssessment strips the per-request fields (trace identity,
// cache provenance) so verdicts from different processes compare on
// substance: app, verdict, score, deletion, cause, model version.
func normalizeAssessment(a Assessment) Assessment {
	a.TraceID = ""
	a.Cached = false
	return a
}

// TestClusterKillRestartUnderLoad is the acceptance e2e: sustained /check
// load through the front door while one replica is killed (abrupt
// connection loss) and later restarted with a WAL-replay rejoin. Every
// client request must complete as a verdict, the restarted member must
// rejoin, and the cluster's verdicts must match a single-node watchdog's.
func TestClusterKillRestartUnderLoad(t *testing.T) {
	f := newClusterFixture(t, 3)
	ids := liveApps(t, 4)
	if len(ids) == 0 {
		t.Skip("world has no live apps")
	}

	// Single-node baseline for verdict parity, on the same registry and
	// upstream services.
	singleWd, err := NewWatchdogFromRegistry(f.reg, WatchdogConfig{
		GraphURL: f.graphURL, WOTURL: f.wotURL, VerdictTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(WatchdogHandler(singleWd, 15*time.Second))
	defer single.Close()
	baseline := make(map[string]Assessment, len(ids))
	for _, id := range ids {
		_, a := getAssessment(t, single.URL+"/check?app="+id)
		baseline[id] = normalizeAssessment(a)
	}

	var (
		stop     atomic.Bool
		requests atomic.Int64
		failures atomic.Int64
	)
	const workers = 6
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				id := ids[(g+i)%len(ids)]
				resp, err := http.Get(f.lb.URL + "/check?app=" + id)
				if err != nil {
					failures.Add(1)
					t.Errorf("worker %d: request error: %v", g, err)
					continue
				}
				var a Assessment
				decErr := json.NewDecoder(resp.Body).Decode(&a)
				resp.Body.Close()
				requests.Add(1)
				switch {
				case decErr != nil:
					failures.Add(1)
					t.Errorf("worker %d: undecodable response: %v", g, decErr)
				case resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound:
					failures.Add(1)
					t.Errorf("worker %d: status %d (assessment %+v)", g, resp.StatusCode, a)
				}
			}
		}(g)
	}

	// Kill the replica that owns the first test key, so the kill provably
	// lands on a member in the live routing path (killing a member none of
	// the keys hash to would exercise nothing).
	resp0, err := http.Get(f.lb.URL + "/check?app=" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	owner := resp0.Header.Get("X-Cluster-Member")
	resp0.Body.Close()
	victim := -1
	for i := 0; i < f.rs.Len(); i++ {
		if f.rs.ID(i) == owner {
			victim = i
		}
	}
	if victim < 0 {
		t.Fatalf("owner %q of %s is not a replica", owner, ids[0])
	}

	// Let load build, then kill it mid-run: its listener and all live
	// connections die abruptly, the same failure mode a SIGKILLed process
	// presents. The ring walk must absorb every affected request.
	time.Sleep(100 * time.Millisecond)
	f.rs.Kill(victim)
	time.Sleep(300 * time.Millisecond)

	// Restart on the same port with the WAL-replay rejoin bootstrap, and
	// wait for the prober to route it again.
	if err := f.rs.Restart(victim, f.rejoinHandler(t, f.rs.ID(victim))); err != nil {
		t.Fatal(err)
	}
	if !f.c.WaitHealthy(f.ctx, 3, 5*time.Second) {
		t.Fatalf("restarted member never rejoined; healthy = %v", f.c.HealthyMembers())
	}
	time.Sleep(150 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if n := requests.Load(); n < workers {
		t.Fatalf("only %d requests completed; load generator broken", n)
	}
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d of %d requests failed across the kill/restart", n, requests.Load())
	}

	// Verdict parity: the cluster's answers match the single-node run
	// byte-for-byte once per-request fields are stripped.
	for _, id := range ids {
		_, a := getAssessment(t, f.lb.URL+"/check?app="+id)
		if got, want := normalizeAssessment(a), baseline[id]; got != want {
			t.Errorf("cluster verdict for %s diverged from single node:\n got %+v\nwant %+v", id, got, want)
		}
	}

	// The aggregated exposition names every member and the cluster gauges.
	resp, err := http.Get(f.lb.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for i := 0; i < 3; i++ {
		if !strings.Contains(text, `member="`+f.rs.ID(i)+`"`) {
			t.Errorf("aggregated /metrics missing member %s", f.rs.ID(i))
		}
	}
	for _, family := range []string{"frappe_cluster_members_healthy", "frappe_cluster_failover_total"} {
		if !strings.Contains(text, family) {
			t.Errorf("aggregated /metrics missing %s", family)
		}
	}
	t.Logf("cluster absorbed %d requests across kill/restart, 0 failures", requests.Load())
}

// TestClusterModelConvergence: a registry publish plus one front-door
// /model/reload fan-out leaves every replica serving the new version —
// the fleet-wide extension of the single-node hot swap.
func TestClusterModelConvergence(t *testing.T) {
	f := newClusterFixture(t, 3)
	ids := liveApps(t, 2)
	if len(ids) == 0 {
		t.Skip("world has no live apps")
	}

	v2 := trainLifecycle(t, 3, 0)
	m2, err := PublishClassifier(f.reg, v2, ModelManifest{Notes: "v2"})
	if err != nil {
		t.Fatal(err)
	}
	if m2.ModelID() == f.m1.ModelID() {
		t.Fatal("v2 content-identical to v1; convergence would be vacuous")
	}

	resp, err := http.Post(f.lb.URL+"/model/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var fanout struct {
		Members []struct {
			Member  string `json:"member"`
			Outcome string `json:"outcome"`
			Serving string `json:"serving"`
		} `json:"members"`
		Converged bool `json:"converged"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fanout); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !fanout.Converged {
		t.Fatalf("reload fan-out: status %d converged=%v (%+v)", resp.StatusCode, fanout.Converged, fanout)
	}
	for _, m := range fanout.Members {
		if m.Serving != m2.ModelID() {
			t.Errorf("member %s serving %q after fan-out, want %q", m.Member, m.Serving, m2.ModelID())
		}
	}

	// /cluster agrees: all three members report the new version.
	cresp, err := http.Get(f.lb.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Members []struct {
			ID           string `json:"id"`
			Healthy      bool   `json:"healthy"`
			ModelVersion string `json:"model_version"`
		} `json:"members"`
		Healthy int `json:"healthy"`
	}
	if err := json.NewDecoder(cresp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if info.Healthy != 3 || len(info.Members) != 3 {
		t.Fatalf("/cluster reports %d healthy of %d members", info.Healthy, len(info.Members))
	}
	for _, m := range info.Members {
		if m.ModelVersion != m2.ModelID() {
			t.Errorf("member %s at %q, want %q", m.ID, m.ModelVersion, m2.ModelID())
		}
	}

	// Verdicts routed through the front door are stamped with v2.
	for _, id := range ids {
		_, a := getAssessment(t, f.lb.URL+"/check?app="+id)
		if a.ModelVersion != m2.ModelID() {
			t.Errorf("post-convergence verdict for %s stamped %q, want %q", id, a.ModelVersion, m2.ModelID())
		}
	}
}

// TestClusterDrainDeRoutes: a replica that flips its /healthz to draining
// is de-routed by the prober — requests keep succeeding on the survivors
// and never name the draining member — and rejoins when it un-drains.
func TestClusterDrainDeRoutes(t *testing.T) {
	f := newClusterFixture(t, 3)
	ids := liveApps(t, 3)
	if len(ids) == 0 {
		t.Skip("world has no live apps")
	}

	drained := f.rs.ID(0)
	f.mu.Lock()
	h := f.health[drained]
	f.mu.Unlock()
	h.SetDraining(true)

	deadline := time.Now().Add(5 * time.Second)
	for len(f.c.HealthyMembers()) != 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := f.c.HealthyMembers(); len(got) != 2 {
		t.Fatalf("draining member never de-routed; healthy = %v", got)
	}

	for _, id := range ids {
		resp, err := http.Get(f.lb.URL + "/check?app=" + id)
		if err != nil {
			t.Fatal(err)
		}
		member := resp.Header.Get("X-Cluster-Member")
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
			t.Errorf("check %s during drain: status %d", id, resp.StatusCode)
		}
		if member == drained {
			t.Errorf("check %s routed to draining member %s", id, drained)
		}
	}

	h.SetDraining(false)
	if !f.c.WaitHealthy(f.ctx, 3, 5*time.Second) {
		t.Fatalf("undrained member never rejoined; healthy = %v", f.c.HealthyMembers())
	}
}
