package frappe

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"frappe/internal/telemetry"
)

// Deterministic unit tests for the watchdog serving cache: singleflight
// collapse with a gated compute function, and TTL expiry on a fake clock.

func TestVerdictCacheSingleflightCollapse(t *testing.T) {
	c := newVerdictCache(time.Minute)
	var calls atomic.Int32
	entered := make(chan struct{})
	release := make(chan struct{})

	reg := telemetry.Default()
	sharedBefore := reg.CounterValue("frappe_verdict_singleflight_shared_total")

	compute := func(context.Context) Assessment {
		if calls.Add(1) == 1 {
			close(entered)
			<-release
		}
		return Assessment{AppID: "app", Score: 0.7}
	}

	leaderDone := make(chan Assessment, 1)
	go func() { leaderDone <- c.do(context.Background(), "app", "", compute) }()
	<-entered

	const followers = 4
	results := make([]Assessment, followers)
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.do(context.Background(), "app", "", compute)
		}(i)
	}
	close(release)
	wg.Wait()
	leader := <-leaderDone

	// Followers either joined the leader's flight or, arriving after it
	// finished, hit the cached entry — in no case do they recompute.
	if got := calls.Load(); got != 1 {
		t.Errorf("compute ran %d times, want 1", got)
	}
	if leader.Cached {
		t.Error("leader assessment claims to be cached")
	}
	for i, a := range results {
		if !a.Cached {
			t.Errorf("follower %d not marked cached", i)
		}
		if a.Score != leader.Score || a.AppID != leader.AppID {
			t.Errorf("follower %d diverged: %+v vs leader %+v", i, a, leader)
		}
	}
	// Every follower was answered by the flight or the cache, so the two
	// counters together account for all of them.
	shared := reg.CounterValue("frappe_verdict_singleflight_shared_total") - sharedBefore
	if shared > followers {
		t.Errorf("singleflight shared count = %d, want <= %d", shared, followers)
	}
}

func TestVerdictCacheTTLExpiry(t *testing.T) {
	c := newVerdictCache(30 * time.Second)
	now := time.Unix(1_700_000_000, 0)
	c.now = func() time.Time { return now }

	var calls int
	compute := func(context.Context) Assessment {
		calls++
		return Assessment{AppID: "app", Score: float64(calls)}
	}
	ctx := context.Background()

	a := c.do(ctx, "app", "", compute)
	if a.Cached || a.Score != 1 {
		t.Fatalf("first do = %+v", a)
	}
	// Inside the TTL: served from cache.
	now = now.Add(29 * time.Second)
	a = c.do(ctx, "app", "", compute)
	if !a.Cached || a.Score != 1 {
		t.Fatalf("within-TTL do = %+v (calls=%d)", a, calls)
	}
	// Past the TTL: recomputed, fresh value cached again.
	now = now.Add(2 * time.Second)
	a = c.do(ctx, "app", "", compute)
	if a.Cached || a.Score != 2 {
		t.Fatalf("post-TTL do = %+v (calls=%d)", a, calls)
	}
	if calls != 2 {
		t.Errorf("compute ran %d times, want 2", calls)
	}
}

// TestVerdictCacheModelSwapInvalidation: a model swap flushes the table,
// and even an entry that survives (the flush/flight race) is treated as
// stale the moment a lookup arrives under a newer model ID — a superseded
// model's verdict is never served.
func TestVerdictCacheModelSwapInvalidation(t *testing.T) {
	c := newVerdictCache(time.Minute)
	ctx := context.Background()
	calls := 0
	compute := func(modelID string, score float64) func(context.Context) Assessment {
		return func(context.Context) Assessment {
			calls++
			return Assessment{AppID: "app", Score: score, ModelVersion: modelID}
		}
	}

	a := c.do(ctx, "app", "v1-aaaa", compute("v1-aaaa", 1))
	if a.Cached || a.Score != 1 {
		t.Fatalf("first v1 do = %+v", a)
	}
	if a = c.do(ctx, "app", "v1-aaaa", compute("v1-aaaa", 1)); !a.Cached {
		t.Fatalf("second v1 do not cached: %+v", a)
	}

	// Swap: flush, then lookups run under the new model's ID.
	c.flush()
	a = c.do(ctx, "app", "v2-bbbb", compute("v2-bbbb", 2))
	if a.Cached || a.Score != 2 || a.ModelVersion != "v2-bbbb" {
		t.Fatalf("post-swap do = %+v", a)
	}

	// Defence in depth: plant a v1-stamped entry (as if an old-model
	// flight completed after the flush) — a v2 lookup must not serve it.
	c.mu.Lock()
	c.entries["app"] = verdictEntry{
		a:   Assessment{AppID: "app", Score: 1, ModelVersion: "v1-aaaa"},
		exp: c.now().Add(time.Minute),
	}
	c.mu.Unlock()
	a = c.do(ctx, "app", "v2-bbbb", compute("v2-bbbb", 2))
	if a.Cached || a.ModelVersion != "v2-bbbb" {
		t.Fatalf("stale-model entry served: %+v", a)
	}
	if calls != 3 {
		t.Errorf("compute ran %d times, want 3", calls)
	}
}

// TestVerdictCacheFlightNotJoinedAcrossSwap: a request arriving after a
// swap must not join a flight still computing under the old model.
func TestVerdictCacheFlightNotJoinedAcrossSwap(t *testing.T) {
	c := newVerdictCache(time.Minute)
	ctx := context.Background()
	entered := make(chan struct{})
	release := make(chan struct{})
	oldDone := make(chan Assessment, 1)
	go func() {
		oldDone <- c.do(ctx, "app", "v1-aaaa", func(context.Context) Assessment {
			close(entered)
			<-release
			return Assessment{AppID: "app", Score: 1, ModelVersion: "v1-aaaa"}
		})
	}()
	<-entered

	// Swap lands while the v1 flight is in progress.
	c.flush()
	newDone := make(chan Assessment, 1)
	go func() {
		newDone <- c.do(ctx, "app", "v2-bbbb", func(context.Context) Assessment {
			return Assessment{AppID: "app", Score: 2, ModelVersion: "v2-bbbb"}
		})
	}()
	got := <-newDone
	if got.Cached || got.ModelVersion != "v2-bbbb" || got.Score != 2 {
		t.Fatalf("post-swap request joined the old flight: %+v", got)
	}
	close(release)
	old := <-oldDone
	if old.ModelVersion != "v1-aaaa" {
		t.Fatalf("old flight result corrupted: %+v", old)
	}
	// The old flight's late result must not have poisoned the table for v2.
	a := c.do(ctx, "app", "v2-bbbb", func(context.Context) Assessment {
		t.Error("v2 verdict should have been cached")
		return Assessment{AppID: "app", ModelVersion: "v2-bbbb"}
	})
	if !a.Cached || a.ModelVersion != "v2-bbbb" {
		t.Fatalf("v2 verdict not served from cache: %+v", a)
	}
}

// TestVerdictCacheJoinerCancellationCause: a joiner whose own context
// dies while waiting on another request's in-flight assessment is a
// client-side cancellation, not an upstream failure — it must carry
// CauseCanceled (504), not CauseUpstream (502), and must not stop the
// leader's flight from completing and caching normally.
func TestVerdictCacheJoinerCancellationCause(t *testing.T) {
	c := newVerdictCache(time.Minute)
	entered := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan Assessment, 1)
	go func() {
		leaderDone <- c.do(context.Background(), "app", "", func(context.Context) Assessment {
			close(entered)
			<-release
			return Assessment{AppID: "app", Score: 0.9}
		})
	}()
	<-entered

	jctx, cancel := context.WithCancel(context.Background())
	joinerDone := make(chan Assessment, 1)
	go func() {
		joinerDone <- c.do(jctx, "app", "", func(context.Context) Assessment {
			t.Error("joiner recomputed instead of joining the flight")
			return Assessment{AppID: "app"}
		})
	}()
	cancel()
	got := <-joinerDone
	if got.Cause != CauseCanceled {
		t.Errorf("canceled joiner cause = %q, want %q", got.Cause, CauseCanceled)
	}
	if got.Error != context.Canceled.Error() {
		t.Errorf("canceled joiner error = %q, want %q", got.Error, context.Canceled)
	}
	if got.Cached {
		t.Errorf("canceled joiner claims to be cached: %+v", got)
	}

	// The flight the joiner abandoned is unaffected: the leader's result
	// lands and is cached for the next caller.
	close(release)
	if leader := <-leaderDone; leader.Score != 0.9 || leader.Error != "" {
		t.Fatalf("leader flight corrupted: %+v", leader)
	}
	if a := c.do(context.Background(), "app", "", func(context.Context) Assessment {
		t.Error("leader verdict should have been cached")
		return Assessment{AppID: "app"}
	}); !a.Cached || a.Score != 0.9 {
		t.Fatalf("leader verdict not served from cache: %+v", a)
	}
}

func TestVerdictCacheDoesNotCacheFailures(t *testing.T) {
	c := newVerdictCache(time.Minute)
	var calls int
	ctx := context.Background()
	fail := func(context.Context) Assessment {
		calls++
		return Assessment{AppID: "app", Error: "upstream exploded", Cause: CauseUpstream}
	}
	for i := 0; i < 2; i++ {
		if a := c.do(ctx, "app", "", fail); a.Cached {
			t.Errorf("failure %d served from cache: %+v", i, a)
		}
	}
	if calls != 2 {
		t.Errorf("compute ran %d times, want 2 (failures must not be cached)", calls)
	}
	// A deleted-app verdict IS conclusive and cacheable.
	deleted := func(context.Context) Assessment {
		calls++
		return Assessment{AppID: "gone", Deleted: true, Malicious: true,
			Cause: CauseDeleted, Error: "app removed from the graph"}
	}
	first := c.do(ctx, "gone", "", deleted)
	second := c.do(ctx, "gone", "", deleted)
	if first.Cached || !second.Cached {
		t.Errorf("deleted verdict caching: first=%+v second=%+v", first, second)
	}
}
